//! The significance-aware task runtime.
//!
//! This module ties the pieces together into the system described in
//! Section 3 of the paper:
//!
//! * a **master/slave work-sharing scheduler** — the spawning thread is the
//!   master, worker threads execute tasks from per-worker FIFO queues filled
//!   round-robin, stealing from each other when empty;
//! * **dependence tracking** over the `in()`/`out()` footprints declared at
//!   spawn time;
//! * the **execution policies** (significance-agnostic, GTB, GTB Max-Buffer,
//!   LQH) that pick the accurate or approximate body of each task while
//!   honouring the per-group accurate-task ratio;
//! * **barriers**: a global `taskwait`, a per-group `taskwait label(...)`, and
//!   `taskwait on(<data>)`, each optionally carrying a `ratio(...)` clause.
//!
//! # Example
//!
//! ```
//! use sig_core::{Runtime, Policy, Significance};
//! use std::sync::Arc;
//! use std::sync::atomic::{AtomicUsize, Ordering};
//!
//! let rt = Runtime::builder()
//!     .workers(4)
//!     .policy(Policy::Gtb { buffer_size: 16 })
//!     .build();
//! let group = rt.create_group("demo", 0.5);
//! let accurate_runs = Arc::new(AtomicUsize::new(0));
//! let approx_runs = Arc::new(AtomicUsize::new(0));
//!
//! for i in 0..100u32 {
//!     let acc = accurate_runs.clone();
//!     let apx = approx_runs.clone();
//!     rt.task(move || { acc.fetch_add(1, Ordering::Relaxed); })
//!         .approx(move || { apx.fetch_add(1, Ordering::Relaxed); })
//!         .significance(((i % 9) + 1) as f64 / 10.0)
//!         .group(&group)
//!         .spawn();
//! }
//! rt.wait_group(&group);
//! let stats = rt.group_stats(&group);
//! assert_eq!(stats.total(), 100);
//! assert!(stats.accurate >= 50);
//! ```

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use parking_lot::{Condvar, Mutex};

use crate::deps::{DepKey, DependenceTracker};
use crate::group::{GroupId, GroupRegistry, GroupState, TaskGroup};
use crate::policy::{gtb_classify, LqhState, Policy};
use crate::queue::QueueSet;
use crate::significance::Significance;
use crate::stats::{GroupStatsSnapshot, RuntimeStats};
use crate::task::{ExecutionMode, Task, TaskBody, TaskId};

/// How long an idle worker sleeps between checks for new work or shutdown.
const IDLE_WAIT: Duration = Duration::from_millis(1);

/// Builder for [`Runtime`] instances.
#[derive(Debug, Clone)]
pub struct RuntimeBuilder {
    workers: Option<usize>,
    policy: Policy,
    pin_hint: bool,
}

impl RuntimeBuilder {
    /// Number of worker threads. Defaults to the host's available
    /// parallelism.
    pub fn workers(mut self, workers: usize) -> Self {
        assert!(workers > 0, "a runtime needs at least one worker");
        self.workers = Some(workers);
        self
    }

    /// The execution policy (default: [`Policy::SignificanceAgnostic`]).
    pub fn policy(mut self, policy: Policy) -> Self {
        self.policy = policy;
        self
    }

    /// Advisory flag mirroring the paper's thread pinning. Thread affinity is
    /// platform-specific and not required for correctness; the flag is kept
    /// so experiment configurations can record the intent.
    pub fn pin_threads(mut self, pin: bool) -> Self {
        self.pin_hint = pin;
        self
    }

    /// Construct the runtime and start its worker threads.
    pub fn build(self) -> Runtime {
        let workers = self.workers.unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        });
        Runtime::start(workers, self.policy)
    }
}

impl Default for RuntimeBuilder {
    fn default() -> Self {
        RuntimeBuilder {
            workers: None,
            policy: Policy::default(),
            pin_hint: false,
        }
    }
}

/// Shared state between the master, the workers and the public handle.
struct RuntimeInner {
    policy: Policy,
    queues: QueueSet,
    groups: GroupRegistry,
    tracker: Mutex<DependenceTracker>,
    stats: RuntimeStats,
    next_task_id: AtomicU64,
    /// Tasks spawned and not yet completed, across all groups.
    outstanding: AtomicUsize,
    /// Task bodies that panicked (caught and counted, never propagated to the
    /// worker thread).
    panicked: AtomicUsize,
    shutdown: AtomicBool,
    work_mutex: Mutex<()>,
    work_available: Condvar,
    completion_mutex: Mutex<()>,
    completion: Condvar,
}

impl RuntimeInner {
    /// Try to move a task into a worker queue. A task is enqueued exactly
    /// once, as soon as it is both *released* (by the master / a GTB flush)
    /// and *ready* (all predecessors completed).
    fn try_enqueue(&self, task: &Arc<Task>) {
        if task.is_released() && task.is_ready() && task.claim_enqueue() {
            self.queues.push_round_robin(task.clone());
            let _guard = self.work_mutex.lock();
            self.work_available.notify_all();
        }
    }

    /// GTB flush: classify the buffered tasks of `group`, then release them.
    fn flush_tasks(&self, group: &GroupState, tasks: Vec<Arc<Task>>) {
        if tasks.is_empty() {
            return;
        }
        self.stats.record_flush();
        let significances: Vec<Significance> = tasks.iter().map(|t| t.significance).collect();
        let decisions = gtb_classify(&significances, group.ratio());
        for (task, accurate) in tasks.iter().zip(decisions) {
            task.decide(accurate);
        }
        for task in tasks {
            task.release();
            self.try_enqueue(&task);
        }
    }

    /// Flush the pending GTB buffer of one group.
    fn flush_group(&self, group: &GroupState) {
        let tasks = std::mem::take(&mut *group.buffer.lock());
        self.flush_tasks(group, tasks);
    }

    /// Flush the GTB buffers of every group (used by global barriers).
    fn flush_all_groups(&self) {
        for group in self.groups.all() {
            self.flush_group(&group);
        }
    }

    /// Execute a task on worker `worker`: make the accuracy decision if it is
    /// still open, run the chosen body, record statistics, then resolve
    /// dependences and barriers.
    fn execute(&self, task: Arc<Task>, lqh: &mut LqhState) {
        let group = self.groups.get(task.group);
        let accurate = match task.decision() {
            Some(decision) => decision,
            None => match self.policy {
                Policy::Lqh => lqh.decide(task.group, task.significance, group.ratio()),
                // The significance-agnostic runtime and any GTB task that
                // somehow reaches a worker undecided run accurately: the
                // conservative choice never degrades output quality.
                _ => true,
            },
        };

        let start = Instant::now();
        let mode = if accurate {
            let body = task.accurate.lock().take();
            if let Some(body) = body {
                self.run_body(body);
            }
            ExecutionMode::Accurate
        } else {
            let body = task.approximate.lock().take();
            match body {
                Some(body) => {
                    self.run_body(body);
                    ExecutionMode::Approximate
                }
                None => ExecutionMode::Dropped,
            }
        };
        let busy = start.elapsed();

        // Drop whichever body was not executed *before* completion is
        // signalled, so resources captured by it (for example
        // `SharedGrid` region writers shared between the accurate and the
        // approximate closure) are released by the time a barrier returns.
        drop(task.accurate.lock().take());
        drop(task.approximate.lock().take());

        self.stats.record_execution(mode, busy);
        group.stats.record(task.significance.level(), mode);
        self.complete(&task, &group);
    }

    /// Run a task body, catching panics so one failing task cannot take a
    /// worker thread (and the whole runtime) down.
    fn run_body(&self, body: TaskBody) {
        if std::panic::catch_unwind(std::panic::AssertUnwindSafe(body)).is_err() {
            self.panicked.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Post-execution bookkeeping: wake successors, update dependence and
    /// group counters, and signal barriers.
    fn complete(&self, task: &Arc<Task>, group: &GroupState) {
        let successors = {
            let mut successors = task.successors.lock();
            task.completed.store(true, Ordering::Release);
            std::mem::take(&mut *successors)
        };
        for successor in successors {
            if successor.pending_deps.fetch_sub(1, Ordering::AcqRel) == 1 {
                self.try_enqueue(&successor);
            }
        }
        if !task.out_keys.is_empty() {
            self.tracker.lock().complete_writes(&task.out_keys);
        }
        group.outstanding.fetch_sub(1, Ordering::AcqRel);
        self.outstanding.fetch_sub(1, Ordering::AcqRel);
        let _guard = self.completion_mutex.lock();
        self.completion.notify_all();
    }

    /// Block until `predicate` becomes true, re-checking on every task
    /// completion.
    fn wait_until(&self, predicate: impl Fn() -> bool) {
        let mut guard = self.completion_mutex.lock();
        while !predicate() {
            self.completion
                .wait_for(&mut guard, Duration::from_millis(5));
        }
    }

    fn worker_loop(self: &Arc<Self>, index: usize) {
        let mut lqh = LqhState::new();
        loop {
            if let Some(task) = self.queues.queue(index).pop_oldest() {
                self.execute(task, &mut lqh);
                continue;
            }
            if let Some(task) = self.queues.steal(index) {
                self.stats.record_steal();
                self.execute(task, &mut lqh);
                continue;
            }
            if self.shutdown.load(Ordering::Acquire) {
                break;
            }
            let mut guard = self.work_mutex.lock();
            if self.queues.total_queued() == 0 && !self.shutdown.load(Ordering::Acquire) {
                self.work_available.wait_for(&mut guard, IDLE_WAIT);
            }
        }
    }
}

/// The significance-aware task runtime (public handle).
///
/// Dropping the runtime waits for all outstanding tasks (flushing any GTB
/// buffers first) and then joins the worker threads.
pub struct Runtime {
    inner: Arc<RuntimeInner>,
    workers: Vec<JoinHandle<()>>,
}

impl Runtime {
    /// Start building a runtime.
    pub fn builder() -> RuntimeBuilder {
        RuntimeBuilder::default()
    }

    /// Convenience constructor: default worker count with the given policy.
    pub fn with_policy(policy: Policy) -> Runtime {
        Runtime::builder().policy(policy).build()
    }

    fn start(workers: usize, policy: Policy) -> Runtime {
        let inner = Arc::new(RuntimeInner {
            policy,
            queues: QueueSet::new(workers),
            groups: GroupRegistry::new(),
            tracker: Mutex::new(DependenceTracker::new()),
            stats: RuntimeStats::default(),
            next_task_id: AtomicU64::new(0),
            outstanding: AtomicUsize::new(0),
            panicked: AtomicUsize::new(0),
            shutdown: AtomicBool::new(false),
            work_mutex: Mutex::new(()),
            work_available: Condvar::new(),
            completion_mutex: Mutex::new(()),
            completion: Condvar::new(),
        });
        let handles = (0..workers)
            .map(|index| {
                let inner = inner.clone();
                std::thread::Builder::new()
                    .name(format!("sig-worker-{index}"))
                    .spawn(move || inner.worker_loop(index))
                    .expect("failed to spawn worker thread")
            })
            .collect();
        Runtime {
            inner,
            workers: handles,
        }
    }

    /// The policy this runtime applies.
    pub fn policy(&self) -> Policy {
        self.inner.policy
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.queues.len()
    }

    /// Whole-runtime execution statistics.
    pub fn stats(&self) -> &RuntimeStats {
        &self.inner.stats
    }

    /// Number of task bodies that panicked (the panics are caught and the
    /// tasks counted as completed).
    pub fn panicked_tasks(&self) -> usize {
        self.inner.panicked.load(Ordering::Relaxed)
    }

    /// Create (or look up) a task group with the given label and target
    /// accurate-task ratio — the runtime-API equivalent of
    /// `tpc_init_group()`.
    pub fn create_group(&self, label: &str, ratio: f64) -> TaskGroup {
        let state = self.inner.groups.get_or_create(label, Some(ratio));
        TaskGroup {
            id: state.id,
            name: state.name.clone(),
        }
    }

    /// Look up a group previously created with [`Runtime::create_group`]
    /// (or implicitly via [`TaskBuilder::label`]).
    pub fn find_group(&self, label: &str) -> Option<TaskGroup> {
        let state = self.inner.groups.find(label)?;
        Some(TaskGroup {
            id: state.id,
            name: state.name.clone(),
        })
    }

    /// Begin describing a task whose accurate body is `body` — the equivalent
    /// of `#pragma omp task`.
    pub fn task<F>(&self, body: F) -> TaskBuilder<'_>
    where
        F: FnOnce() + Send + 'static,
    {
        TaskBuilder {
            runtime: self,
            accurate: Box::new(body),
            approximate: None,
            significance: Significance::default(),
            group: None,
            in_keys: Vec::new(),
            out_keys: Vec::new(),
        }
    }

    /// Global barrier (`#pragma omp taskwait`): flush all GTB buffers and
    /// wait until every spawned task has completed.
    pub fn wait_all(&self) {
        self.inner.flush_all_groups();
        let inner = self.inner.clone();
        self.inner
            .wait_until(move || inner.outstanding.load(Ordering::Acquire) == 0);
    }

    /// Global barrier with a `ratio(...)` clause: the ratio is applied to the
    /// implicit global group before flushing.
    pub fn wait_all_with_ratio(&self, ratio: f64) {
        self.inner.groups.get(GroupId::GLOBAL).set_ratio(ratio);
        self.wait_all();
    }

    /// Group barrier (`#pragma omp taskwait label(...)`): flush the group's
    /// GTB buffer and wait for its tasks.
    pub fn wait_group(&self, group: &TaskGroup) {
        let state = self.inner.groups.get(group.id);
        self.inner.flush_group(&state);
        let inner = self.inner.clone();
        let id = group.id;
        self.inner.wait_until(move || {
            inner.groups.get(id).outstanding.load(Ordering::Acquire) == 0
        });
    }

    /// Group barrier with a `ratio(...)` clause
    /// (`#pragma omp taskwait label(...) ratio(...)`).
    ///
    /// The ratio is installed before the flush so a Max-Buffer GTB flush and
    /// all still-undecided LQH decisions observe it.
    pub fn wait_group_with_ratio(&self, group: &TaskGroup, ratio: f64) {
        let state = self.inner.groups.get(group.id);
        state.set_ratio(ratio);
        self.inner.flush_group(&state);
        let inner = self.inner.clone();
        let id = group.id;
        self.inner.wait_until(move || {
            inner.groups.get(id).outstanding.load(Ordering::Acquire) == 0
        });
    }

    /// Data barrier (`#pragma omp taskwait on(...)`): wait until every task
    /// that writes `key` has completed. All GTB buffers are flushed first, as
    /// buffered tasks could be writers of `key`.
    pub fn wait_on(&self, key: DepKey) {
        self.inner.flush_all_groups();
        let inner = self.inner.clone();
        self.inner
            .wait_until(move || inner.tracker.lock().outstanding_writes(key) == 0);
    }

    /// Execution statistics of one group (Table 2 inputs).
    pub fn group_stats(&self, group: &TaskGroup) -> GroupStatsSnapshot {
        let state = self.inner.groups.get(group.id);
        state.stats.snapshot(state.ratio())
    }

    /// Execution statistics of every group, labelled by group name.
    pub fn all_group_stats(&self) -> Vec<(String, GroupStatsSnapshot)> {
        self.inner
            .groups
            .all()
            .iter()
            .map(|state| {
                (
                    state.name.to_string(),
                    state.stats.snapshot(state.ratio()),
                )
            })
            .collect()
    }
}

impl Drop for Runtime {
    fn drop(&mut self) {
        // Make sure nothing is lost in GTB buffers, then stop the workers.
        self.wait_all();
        self.inner.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.inner.work_mutex.lock();
            self.inner.work_available.notify_all();
        }
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
    }
}

impl std::fmt::Debug for Runtime {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Runtime")
            .field("policy", &self.inner.policy)
            .field("workers", &self.workers.len())
            .field("outstanding", &self.inner.outstanding.load(Ordering::Relaxed))
            .finish()
    }
}

/// Fluent description of a task before it is spawned — the programming-model
/// clauses of `#pragma omp task` map to the methods of this builder.
#[must_use = "a task builder does nothing until .spawn() is called"]
pub struct TaskBuilder<'rt> {
    runtime: &'rt Runtime,
    accurate: TaskBody,
    approximate: Option<TaskBody>,
    significance: Significance,
    group: Option<GroupId>,
    in_keys: Vec<DepKey>,
    out_keys: Vec<DepKey>,
}

impl<'rt> TaskBuilder<'rt> {
    /// `significant(expr)` — the task's significance in `[0.0, 1.0]`.
    pub fn significance(mut self, significance: impl Into<Significance>) -> Self {
        self.significance = significance.into();
        self
    }

    /// `approxfun(function)` — the approximate task body executed when the
    /// runtime opts for a non-accurate computation of the task.
    pub fn approx<F>(mut self, body: F) -> Self
    where
        F: FnOnce() + Send + 'static,
    {
        self.approximate = Some(Box::new(body));
        self
    }

    /// `label(...)` by group handle.
    pub fn group(mut self, group: &TaskGroup) -> Self {
        self.group = Some(group.id);
        self
    }

    /// `label(...)` by name; the group is created with a default ratio of 1.0
    /// if it does not exist yet.
    pub fn label(mut self, label: &str) -> Self {
        let state = self.runtime.inner.groups.get_or_create(label, None);
        self.group = Some(state.id);
        self
    }

    /// `in(...)` — dependence keys this task reads.
    pub fn reads(mut self, keys: impl IntoIterator<Item = DepKey>) -> Self {
        self.in_keys.extend(keys);
        self
    }

    /// `out(...)` — dependence keys this task writes.
    pub fn writes(mut self, keys: impl IntoIterator<Item = DepKey>) -> Self {
        self.out_keys.extend(keys);
        self
    }

    /// Submit the task to the runtime. Returns the task's id (spawn order).
    pub fn spawn(self) -> TaskId {
        let inner = &self.runtime.inner;
        let group_state = match self.group {
            Some(id) => inner.groups.get(id),
            None => inner.groups.get(GroupId::GLOBAL),
        };
        let id = TaskId(inner.next_task_id.fetch_add(1, Ordering::Relaxed));
        let task = Arc::new(Task::new(
            id,
            group_state.id,
            self.significance,
            self.accurate,
            self.approximate,
            self.out_keys.clone(),
        ));
        inner.outstanding.fetch_add(1, Ordering::AcqRel);
        group_state.outstanding.fetch_add(1, Ordering::AcqRel);
        inner.stats.record_spawn();

        // Hold one phantom dependence while wiring real ones, so the task
        // cannot be enqueued halfway through registration.
        task.pending_deps.store(1, Ordering::Release);
        let predecessors = inner
            .tracker
            .lock()
            .register(&task, &self.in_keys, &self.out_keys);
        let mut wired = 0usize;
        for predecessor in predecessors {
            let mut successors = predecessor.successors.lock();
            if !predecessor.completed.load(Ordering::Acquire) {
                successors.push(task.clone());
                wired += 1;
            }
        }
        if wired > 0 {
            task.pending_deps.fetch_add(wired, Ordering::AcqRel);
        }

        match inner.policy {
            Policy::SignificanceAgnostic => {
                task.decide(true);
                task.release();
            }
            Policy::Lqh => {
                task.release();
            }
            Policy::Gtb { .. } | Policy::GtbMaxBuffer => {
                let capacity = inner
                    .policy
                    .buffer_capacity()
                    .expect("buffering policy has a capacity");
                let mut buffer = group_state.buffer.lock();
                buffer.push(task.clone());
                if buffer.len() >= capacity {
                    let tasks = std::mem::take(&mut *buffer);
                    drop(buffer);
                    inner.flush_tasks(&group_state, tasks);
                }
            }
        }

        // Drop the phantom dependence; enqueue if everything is already in
        // place (released + no outstanding predecessors).
        task.pending_deps.fetch_sub(1, Ordering::AcqRel);
        inner.try_enqueue(&task);
        id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    fn count_runtime(policy: Policy) -> Runtime {
        Runtime::builder().workers(4).policy(policy).build()
    }

    #[test]
    fn builder_defaults() {
        let rt = Runtime::builder().workers(2).build();
        assert_eq!(rt.workers(), 2);
        assert_eq!(rt.policy(), Policy::SignificanceAgnostic);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_rejected() {
        let _ = Runtime::builder().workers(0);
    }

    #[test]
    fn agnostic_runtime_runs_everything_accurately() {
        let rt = count_runtime(Policy::SignificanceAgnostic);
        let accurate = Arc::new(AtomicUsize::new(0));
        let approx = Arc::new(AtomicUsize::new(0));
        for i in 0..64u32 {
            let a = accurate.clone();
            let b = approx.clone();
            rt.task(move || {
                a.fetch_add(1, Ordering::Relaxed);
            })
            .approx(move || {
                b.fetch_add(1, Ordering::Relaxed);
            })
            .significance((i % 10) as f64 / 10.0)
            .spawn();
        }
        rt.wait_all();
        assert_eq!(accurate.load(Ordering::Relaxed), 64);
        assert_eq!(approx.load(Ordering::Relaxed), 0);
        assert_eq!(rt.stats().accurate(), 64);
        assert_eq!(rt.stats().completed(), 64);
    }

    #[test]
    fn gtb_respects_ratio_and_significance() {
        let rt = count_runtime(Policy::GtbMaxBuffer);
        let group = rt.create_group("g", 0.5);
        let accurate = Arc::new(AtomicUsize::new(0));
        let approx = Arc::new(AtomicUsize::new(0));
        for i in 0..100u32 {
            let a = accurate.clone();
            let b = approx.clone();
            rt.task(move || {
                a.fetch_add(1, Ordering::Relaxed);
            })
            .approx(move || {
                b.fetch_add(1, Ordering::Relaxed);
            })
            .significance(((i % 9) + 1) as f64 / 10.0)
            .group(&group)
            .spawn();
        }
        rt.wait_group(&group);
        let stats = rt.group_stats(&group);
        assert_eq!(stats.total(), 100);
        // Max-buffer GTB has perfect information: the requested ratio is met
        // exactly (within the ceil rounding) and no inversion happens.
        assert!(stats.accurate >= 50 && stats.accurate <= 51, "{stats:?}");
        assert_eq!(stats.inverted, 0);
        assert!(stats.ratio_diff() < 0.02);
    }

    #[test]
    fn gtb_small_buffer_still_tracks_ratio() {
        let rt = count_runtime(Policy::Gtb { buffer_size: 10 });
        let group = rt.create_group("g", 0.3);
        for i in 0..200u32 {
            rt.task(|| {})
                .approx(|| {})
                .significance(((i % 9) + 1) as f64 / 10.0)
                .group(&group)
                .spawn();
        }
        rt.wait_group(&group);
        let stats = rt.group_stats(&group);
        assert_eq!(stats.total(), 200);
        // Each 10-task window is classified independently; the overall ratio
        // still lands on target because windows see the same distribution.
        assert!(
            (stats.achieved_ratio() - 0.3).abs() < 0.1,
            "achieved {}",
            stats.achieved_ratio()
        );
    }

    #[test]
    fn dropped_tasks_have_no_approx_body() {
        let rt = count_runtime(Policy::GtbMaxBuffer);
        let group = rt.create_group("drop", 0.0);
        let ran = Arc::new(AtomicUsize::new(0));
        for _ in 0..10 {
            let r = ran.clone();
            rt.task(move || {
                r.fetch_add(1, Ordering::Relaxed);
            })
            .significance(0.5)
            .group(&group)
            .spawn();
        }
        rt.wait_group(&group);
        let stats = rt.group_stats(&group);
        assert_eq!(stats.dropped, 10);
        assert_eq!(ran.load(Ordering::Relaxed), 0, "dropped bodies must not run");
    }

    #[test]
    fn lqh_runs_critical_tasks_accurately() {
        let rt = count_runtime(Policy::Lqh);
        let group = rt.create_group("lqh", 0.2);
        let accurate = Arc::new(AtomicUsize::new(0));
        for i in 0..50u32 {
            let a = accurate.clone();
            let sig = if i % 2 == 0 { 1.0 } else { 0.0 };
            rt.task(move || {
                a.fetch_add(1, Ordering::Relaxed);
            })
            .approx(|| {})
            .significance(sig)
            .group(&group)
            .spawn();
        }
        rt.wait_group(&group);
        // Exactly the 25 critical tasks must have run accurately.
        assert_eq!(accurate.load(Ordering::Relaxed), 25);
        let stats = rt.group_stats(&group);
        assert_eq!(stats.accurate, 25);
        assert_eq!(stats.approximate, 25);
    }

    #[test]
    fn dependencies_order_writer_before_reader() {
        let rt = count_runtime(Policy::SignificanceAgnostic);
        let key = DepKey::named("value");
        let cell = Arc::new(AtomicUsize::new(0));
        let observed = Arc::new(AtomicUsize::new(0));
        {
            let cell = cell.clone();
            rt.task(move || {
                std::thread::sleep(Duration::from_millis(20));
                cell.store(42, Ordering::SeqCst);
            })
            .writes([key])
            .spawn();
        }
        {
            let cell = cell.clone();
            let observed = observed.clone();
            rt.task(move || {
                observed.store(cell.load(Ordering::SeqCst), Ordering::SeqCst);
            })
            .reads([key])
            .spawn();
        }
        rt.wait_all();
        assert_eq!(observed.load(Ordering::SeqCst), 42);
    }

    #[test]
    fn dependency_chain_executes_in_order() {
        let rt = count_runtime(Policy::SignificanceAgnostic);
        let key = DepKey::named("chain");
        let log = Arc::new(Mutex::new(Vec::new()));
        for i in 0..16usize {
            let log = log.clone();
            rt.task(move || {
                log.lock().push(i);
            })
            .reads([key])
            .writes([key])
            .spawn();
        }
        rt.wait_all();
        let log = log.lock().clone();
        assert_eq!(log, (0..16).collect::<Vec<_>>());
    }

    #[test]
    fn wait_on_blocks_until_writers_finish() {
        let rt = count_runtime(Policy::SignificanceAgnostic);
        let key = DepKey::named("result");
        let flag = Arc::new(AtomicBool::new(false));
        {
            let flag = flag.clone();
            rt.task(move || {
                std::thread::sleep(Duration::from_millis(30));
                flag.store(true, Ordering::SeqCst);
            })
            .writes([key])
            .spawn();
        }
        rt.wait_on(key);
        assert!(flag.load(Ordering::SeqCst));
    }

    #[test]
    fn wait_group_only_waits_for_that_group() {
        let rt = count_runtime(Policy::SignificanceAgnostic);
        let fast = rt.create_group("fast", 1.0);
        let slow = rt.create_group("slow", 1.0);
        let slow_done = Arc::new(AtomicBool::new(false));
        {
            let slow_done = slow_done.clone();
            rt.task(move || {
                std::thread::sleep(Duration::from_millis(80));
                slow_done.store(true, Ordering::SeqCst);
            })
            .group(&slow)
            .spawn();
        }
        rt.task(|| {}).group(&fast).spawn();
        rt.wait_group(&fast);
        // The slow group may still be running when the fast barrier returns.
        let fast_stats = rt.group_stats(&fast);
        assert_eq!(fast_stats.total(), 1);
        rt.wait_group(&slow);
        assert!(slow_done.load(Ordering::SeqCst));
    }

    #[test]
    fn ratio_at_barrier_controls_max_buffer_flush() {
        let rt = count_runtime(Policy::GtbMaxBuffer);
        let group = rt.create_group("late-ratio", 1.0);
        for i in 0..40u32 {
            rt.task(|| {})
                .approx(|| {})
                .significance(((i % 9) + 1) as f64 / 10.0)
                .group(&group)
                .spawn();
        }
        // The ratio arrives only at the barrier, like
        // `#pragma omp taskwait label(...) ratio(0.25)`.
        rt.wait_group_with_ratio(&group, 0.25);
        let stats = rt.group_stats(&group);
        assert_eq!(stats.total(), 40);
        assert_eq!(stats.accurate, 10);
    }

    #[test]
    fn panicking_task_is_contained() {
        let rt = count_runtime(Policy::SignificanceAgnostic);
        rt.task(|| panic!("boom")).spawn();
        rt.task(|| {}).spawn();
        rt.wait_all();
        assert_eq!(rt.panicked_tasks(), 1);
        assert_eq!(rt.stats().completed(), 2);
    }

    #[test]
    fn drop_flushes_and_completes_everything() {
        let counter = Arc::new(AtomicUsize::new(0));
        {
            let rt = count_runtime(Policy::GtbMaxBuffer);
            let group = rt.create_group("g", 1.0);
            for _ in 0..32 {
                let c = counter.clone();
                rt.task(move || {
                    c.fetch_add(1, Ordering::Relaxed);
                })
                .group(&group)
                .spawn();
            }
            // No explicit barrier: dropping the runtime must flush the GTB
            // buffer and run every task.
        }
        assert_eq!(counter.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn stats_expose_steals_and_flushes() {
        let rt = Runtime::builder()
            .workers(4)
            .policy(Policy::Gtb { buffer_size: 4 })
            .build();
        let group = rt.create_group("s", 1.0);
        for _ in 0..64 {
            rt.task(|| std::thread::sleep(Duration::from_micros(200)))
                .group(&group)
                .spawn();
        }
        rt.wait_group(&group);
        assert!(rt.stats().buffer_flushes() >= 16);
        assert!(rt.stats().busy_core_seconds() > 0.0);
    }

    #[test]
    fn find_group_after_label_spawn() {
        let rt = count_runtime(Policy::SignificanceAgnostic);
        rt.task(|| {}).label("implicit").spawn();
        rt.wait_all();
        let group = rt.find_group("implicit").expect("group should exist");
        assert_eq!(rt.group_stats(&group).total(), 1);
        assert!(rt.find_group("missing").is_none());
    }

    #[test]
    fn wait_all_with_ratio_applies_to_unlabelled_tasks() {
        let rt = count_runtime(Policy::GtbMaxBuffer);
        for i in 0..20u32 {
            rt.task(|| {})
                .approx(|| {})
                .significance(((i % 9) + 1) as f64 / 10.0)
                .spawn();
        }
        rt.wait_all_with_ratio(0.5);
        assert_eq!(rt.stats().accurate(), 10);
        assert_eq!(rt.stats().approximate(), 10);
    }

    #[test]
    fn many_small_tasks_complete() {
        let rt = Runtime::builder().workers(8).policy(Policy::Lqh).build();
        let group = rt.create_group("many", 0.5);
        let counter = Arc::new(AtomicUsize::new(0));
        for i in 0..2000u32 {
            let c = counter.clone();
            rt.task(move || {
                c.fetch_add(1, Ordering::Relaxed);
            })
            .approx({
                let c = counter.clone();
                move || {
                    c.fetch_add(1, Ordering::Relaxed);
                }
            })
            .significance(((i % 9) + 1) as f64 / 10.0)
            .group(&group)
            .spawn();
        }
        rt.wait_group(&group);
        assert_eq!(counter.load(Ordering::Relaxed), 2000);
        assert_eq!(rt.group_stats(&group).total(), 2000);
    }
}

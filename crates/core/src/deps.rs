//! Dependence tracking over declared task footprints.
//!
//! The programming model's `in(...)` / `out(...)` clauses declare the data a
//! task reads and writes; the runtime derives inter-task dependences from
//! them (Section 2: "This information is exploited by the runtime to
//! automatically determine the dependencies among tasks"). The paper reuses
//! the BDDT dependence machinery and notes that dependence tracking "is not
//! affected by our approximate computing programming model"; the
//! implementation here is the standard last-writer/reader-set scheme:
//!
//! * a task that **reads** a key depends on the key's last writer (RAW),
//! * a task that **writes** a key depends on the last writer (WAW) and on
//!   every reader since that writer (WAR), and becomes the new last writer.
//!
//! Keys are opaque [`DepKey`] values; convenience constructors derive them
//! from names or from the address of the data they stand for.
//!
//! # A read-mostly last-writer table
//!
//! The tracker is split into [`SHARDS`] shards selected by a multiplicative
//! hash of the key. Each shard publishes its state twice over:
//!
//! * a **snapshot map** (`DepKey → Arc<KeyCell>`) behind an atomic pointer,
//!   republished copy-on-write when a key is first seen, and
//! * per key, a generation-stamped **[`ReadEpoch`]** behind another atomic
//!   pointer: the last writer at the moment the epoch opened plus a
//!   lock-free list of the readers registered since.
//!
//! The common, read-dominated operations never take a lock:
//!
//! * a **single-key read-only registration** pins the shard (one counter
//!   increment), resolves its RAW predecessor from the published epoch and
//!   pushes itself onto the epoch's reader list with one CAS;
//! * **write completion** (`complete_writes`) and the `taskwait on(...)`
//!   predicate (`outstanding_writes`) are plain atomic ops on the key cell.
//!
//! Only **writer registration** — and any registration touching more than
//! one key — takes the shard locks, in ascending shard order over the whole
//! footprint. The ordering matters: taking shards one key at a time would
//! let two concurrent multi-key registrants order differently per key and
//! wire a dependence *cycle* (task A waits on B via one key, B on A via
//! another), deadlocking both. That same hazard is exactly why the lock-free
//! fast path is restricted to single-key footprints: a one-key registration
//! linearises at its reader-list CAS and cannot participate in a cycle.
//!
//! A writer advances a key by swapping in a fresh epoch and *sealing* the
//! old epoch's reader list (collecting its WAR predecessors); a lock-free
//! reader that loses the race — its push hits the sealed list — simply
//! reloads the epoch pointer and registers against the new generation,
//! picking up the new writer as its RAW predecessor. Replaced epochs and
//! snapshots are retired into a per-shard limbo list and freed once the
//! shard's read-side **pin count** is observed at zero (publication happens
//! before the check, so late readers can only ever see live pointers).

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::sync::CachePadded;
use crate::task::Task;

/// An opaque dependence key identifying a piece of data (an array, a matrix
/// block, a scalar...) named in a task's `in()`/`out()` footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DepKey(u64);

impl DepKey {
    /// Key from an explicit integer identifier.
    pub fn from_raw(id: u64) -> Self {
        DepKey(id)
    }

    /// Key derived from a string name (stable across calls with equal names).
    pub fn named(name: &str) -> Self {
        let mut hasher = DefaultHasher::new();
        // Distinguish named keys from raw/address keys.
        0xA5u8.hash(&mut hasher);
        name.hash(&mut hasher);
        DepKey(hasher.finish())
    }

    /// Key derived from the address of a value — handy for buffers: two tasks
    /// naming the same buffer get the same key.
    pub fn of<T: ?Sized>(value: &T) -> Self {
        DepKey(value as *const T as *const u8 as usize as u64)
    }

    /// Key for the `i`-th element/row/block of the object identified by
    /// `base` (e.g. one output row of an image).
    pub fn element(base: DepKey, index: usize) -> Self {
        let mut hasher = DefaultHasher::new();
        base.0.hash(&mut hasher);
        index.hash(&mut hasher);
        DepKey(hasher.finish())
    }

    /// The raw 64-bit value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Number of independently published tracker shards (must be a power of two:
/// `shard_of` selects by the top `log2(SHARDS)` bits of the mixed key).
const SHARDS: usize = 16;
const _: () = assert!(SHARDS.is_power_of_two());

/// The shard a key lives in. Fibonacci-multiplicative mix of the raw key:
/// address-derived keys share alignment in their low bits, so the top bits
/// of the product distribute far better than `raw % SHARDS` would.
fn shard_of(key: DepKey) -> usize {
    let shift = u64::BITS - SHARDS.trailing_zeros();
    (key.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> shift) as usize
}

/// Sentinel marking a sealed reader list. Never dereferenced (and never
/// equal to a real allocation: `dangling_mut` is the type's alignment).
fn sealed() -> *mut ReaderNode {
    std::ptr::dangling_mut()
}

struct ReaderNode {
    task: Arc<Task>,
    next: *mut ReaderNode,
}

/// Lock-free list of the readers registered in one epoch (same Treiber +
/// seal discipline as the task successor list): readers push with a CAS,
/// the next writer swaps in a sealed sentinel and drains. A push that
/// observes the sentinel knows the epoch is closed and must retry against
/// the key's new epoch.
struct ReaderList {
    head: AtomicPtr<ReaderNode>,
}

impl ReaderList {
    fn new() -> Self {
        ReaderList {
            head: AtomicPtr::new(std::ptr::null_mut()),
        }
    }

    /// Register `reader`; returns `false` if the epoch was already sealed.
    fn try_push(&self, reader: Arc<Task>) -> bool {
        let node = Box::into_raw(Box::new(ReaderNode {
            task: reader,
            next: std::ptr::null_mut(),
        }));
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            if head == sealed() {
                // SAFETY: the node was just allocated above and never shared.
                drop(unsafe { Box::from_raw(node) });
                return false;
            }
            // SAFETY: the node is still exclusively ours until the CAS wins.
            unsafe { (*node).next = head };
            match self
                .head
                .compare_exchange_weak(head, node, Ordering::AcqRel, Ordering::Acquire)
            {
                Ok(_) => return true,
                Err(observed) => head = observed,
            }
        }
    }

    /// Seal the list (no further pushes succeed) and drain the registered
    /// readers.
    fn seal(&self) -> Vec<Arc<Task>> {
        let mut head = self.head.swap(sealed(), Ordering::AcqRel);
        let mut readers = Vec::new();
        while !head.is_null() && head != sealed() {
            // SAFETY: the swap above made this list unreachable to pushers;
            // each node came from `Box::into_raw` and is freed exactly once.
            let node = unsafe { Box::from_raw(head) };
            readers.push(node.task);
            head = node.next;
        }
        readers
    }
}

impl Drop for ReaderList {
    fn drop(&mut self) {
        // Frees any nodes never drained (e.g. readers of a final epoch).
        let _ = self.seal();
    }
}

/// One writer generation of a key: the last writer when the epoch opened
/// plus every reader registered since. Immutable except for the lock-free
/// reader list; replaced wholesale (never mutated) by the next writer.
struct ReadEpoch {
    /// Shard generation stamp at publication. Strictly increasing along any
    /// one key's epoch chain — diagnostics and test hook for the RCU path.
    generation: u64,
    writer: Option<Arc<Task>>,
    readers: ReaderList,
}

/// Per-key cell. Shared (via `Arc`) between all published snapshot
/// generations of its shard, so snapshot republication never invalidates a
/// reader's cell reference.
struct KeyCell {
    epoch: AtomicPtr<ReadEpoch>,
    /// Writers registered for the key and not yet completed; drives the
    /// `taskwait on(...)` predicate without any lock.
    outstanding_writes: AtomicUsize,
    /// Sticky poison flag: set when a task writing the key panicked or was
    /// cancelled/shed, so dependents can detect they may have read garbage.
    poisoned: AtomicBool,
}

impl KeyCell {
    fn new(generation: u64) -> KeyCell {
        KeyCell {
            epoch: AtomicPtr::new(Box::into_raw(Box::new(ReadEpoch {
                generation,
                writer: None,
                readers: ReaderList::new(),
            }))),
            outstanding_writes: AtomicUsize::new(0),
            poisoned: AtomicBool::new(false),
        }
    }
}

impl Drop for KeyCell {
    fn drop(&mut self) {
        // SAFETY: exclusive access in drop; the current epoch pointer came
        // from `Box::into_raw` and replaced epochs live in the shard limbo.
        unsafe { drop(Box::from_raw(*self.epoch.get_mut())) };
    }
}

type Snapshot = HashMap<DepKey, Arc<KeyCell>>;

/// Writer-side state of one shard, guarded by the gate mutex.
struct ShardGate {
    /// Monotonic stamp bumped on every publication (new key, new epoch).
    generation: u64,
    /// Epochs replaced by writers; lock-free readers may still hold them.
    retired_epochs: Vec<*mut ReadEpoch>,
    /// Snapshot maps replaced by key inserts; ditto.
    retired_snapshots: Vec<*mut Snapshot>,
}

/// One tracker shard: a locked writer side (the gate) plus the published
/// read-mostly state (snapshot map, key epochs) and its read-side pin count.
struct TrackerShard {
    gate: Mutex<ShardGate>,
    snapshot: AtomicPtr<Snapshot>,
    /// Lock-free readers currently dereferencing published pointers. The
    /// reclamation protocol (publish, then check pins == 0) makes a zero
    /// observation proof that no reader can still hold a retired pointer.
    pins: AtomicUsize,
    /// Reclamation-pressure valve: while set, new fast-path readers fall
    /// back to the locked path instead of pinning, so the pin count drains
    /// to zero deterministically (see [`TrackerShard::reclaim`]).
    draining: AtomicBool,
}

// SAFETY: the raw pointers in the gate are only touched while holding the
// gate mutex or in `Drop` (exclusive access); `snapshot` and the epoch
// pointers follow the pin-count reclamation protocol documented above.
unsafe impl Send for TrackerShard {}
unsafe impl Sync for TrackerShard {}

impl TrackerShard {
    fn new() -> TrackerShard {
        TrackerShard {
            gate: Mutex::new(ShardGate {
                generation: 0,
                retired_epochs: Vec::new(),
                retired_snapshots: Vec::new(),
            }),
            snapshot: AtomicPtr::new(Box::into_raw(Box::new(Snapshot::new()))),
            pins: AtomicUsize::new(0),
            draining: AtomicBool::new(false),
        }
    }

    /// Enter the read side. Pairs with [`TrackerShard::unpin`]; the SeqCst
    /// increment forms a Dekker pair with the publish-then-check sequence on
    /// the reclamation side.
    fn pin(&self) {
        self.pins.fetch_add(1, Ordering::SeqCst);
    }

    fn unpin(&self) {
        self.pins.fetch_sub(1, Ordering::SeqCst);
    }

    /// Look up (or create and publish) the cell for `key`. Gate must be
    /// held; inserts republish the snapshot copy-on-write.
    fn cell(&self, gate: &mut ShardGate, key: DepKey) -> Arc<KeyCell> {
        // SAFETY: the gate is held, so the snapshot pointer is stable and
        // live (only gate holders replace it, retirees outlive the gate).
        let snapshot = unsafe { &*self.snapshot.load(Ordering::Relaxed) };
        if let Some(cell) = snapshot.get(&key) {
            return cell.clone();
        }
        gate.generation += 1;
        let cell = Arc::new(KeyCell::new(gate.generation));
        let mut next = snapshot.clone();
        next.insert(key, cell.clone());
        let old = self
            .snapshot
            .swap(Box::into_raw(Box::new(next)), Ordering::SeqCst);
        gate.retired_snapshots.push(old);
        cell
    }

    /// Locked read registration (multi-key footprints): join the current
    /// epoch's reader list and collect the RAW predecessor.
    fn register_read_locked(
        &self,
        gate: &mut ShardGate,
        task: &Arc<Task>,
        key: DepKey,
        preds: &mut Vec<Arc<Task>>,
    ) {
        let cell = self.cell(gate, key);
        // SAFETY: epochs are only replaced under the gate, which we hold.
        let epoch = unsafe { &*cell.epoch.load(Ordering::Acquire) };
        if let Some(writer) = &epoch.writer {
            push_pred(task, preds, writer);
        }
        let pushed = epoch.readers.try_push(task.clone());
        debug_assert!(pushed, "an epoch cannot be sealed while the gate is held");
    }

    /// Locked write registration: open a fresh epoch, seal the old one and
    /// collect its writer (WAW) and readers (WAR) as predecessors.
    fn register_write_locked(
        &self,
        gate: &mut ShardGate,
        task: &Arc<Task>,
        key: DepKey,
        preds: &mut Vec<Arc<Task>>,
    ) {
        let cell = self.cell(gate, key);
        gate.generation += 1;
        let fresh = Box::into_raw(Box::new(ReadEpoch {
            generation: gate.generation,
            writer: Some(task.clone()),
            readers: ReaderList::new(),
        }));
        // SeqCst swap: the publication must precede the pin check in
        // `reclaim` in the SC order (see the module docs).
        let old = cell.epoch.swap(fresh, Ordering::SeqCst);
        // SAFETY: retired-but-not-freed allocation (freed only by `reclaim`
        // under this gate once the pin count is observed at zero).
        let old_ref = unsafe { &*old };
        debug_assert!(old_ref.generation < gate.generation);
        if let Some(writer) = &old_ref.writer {
            push_pred(task, preds, writer);
        }
        for reader in old_ref.readers.seal() {
            push_pred(task, preds, &reader);
        }
        gate.retired_epochs.push(old);
        cell.outstanding_writes.fetch_add(1, Ordering::SeqCst);
    }

    /// Retired pointers above which `reclaim` stops deferring and forces a
    /// drain of the read side instead.
    const RECLAIM_PRESSURE: usize = 64;

    /// Free retired epochs/snapshots if no reader is pinned. Must run after
    /// every new pointer of the current registration is published.
    ///
    /// A non-zero pin count normally defers reclamation to a later
    /// registration. Under pressure (a long limbo list) the `draining`
    /// valve is raised so **new** fast-path readers fall back to the locked
    /// path (they block on the gate we hold) instead of pinning, and we
    /// wait for the already-pinned readers to finish. That wait terminates
    /// deterministically: a pinned reader never takes the gate and never
    /// blocks — its only loop retries a reader-list push after a seal, and
    /// seals on this shard require the gate we are holding — so every
    /// in-flight reader completes in a bounded number of steps and the
    /// limbo cannot grow without bound however saturated the read side is.
    fn reclaim(&self, gate: &mut ShardGate) {
        let retired = gate.retired_epochs.len() + gate.retired_snapshots.len();
        if retired == 0 {
            return;
        }
        if self.pins.load(Ordering::SeqCst) != 0 {
            if retired < Self::RECLAIM_PRESSURE {
                return; // a reader may still hold a retired pointer: defer
            }
            self.draining.store(true, Ordering::SeqCst);
            // Bounded by the readers already past the valve (at most one
            // per thread), each finishing in a few instructions.
            let mut rounds = 0u32;
            while self.pins.load(Ordering::SeqCst) != 0 {
                rounds += 1;
                if rounds.is_multiple_of(64) {
                    std::thread::yield_now(); // 1-core: let the reader run
                } else {
                    std::hint::spin_loop();
                }
            }
            self.draining.store(false, Ordering::SeqCst);
        }
        for epoch in gate.retired_epochs.drain(..) {
            // SAFETY: unpublished before the pin check read zero; no reader
            // can reach these anymore, and the gate serialises freeing.
            unsafe { drop(Box::from_raw(epoch)) };
        }
        for snapshot in gate.retired_snapshots.drain(..) {
            // SAFETY: as above.
            unsafe { drop(Box::from_raw(snapshot)) };
        }
    }
}

impl Drop for TrackerShard {
    fn drop(&mut self) {
        let gate = self.gate.get_mut().unwrap();
        for epoch in gate.retired_epochs.drain(..) {
            // SAFETY: exclusive access in drop; freed exactly once.
            unsafe { drop(Box::from_raw(epoch)) };
        }
        for snapshot in gate.retired_snapshots.drain(..) {
            // SAFETY: as above.
            unsafe { drop(Box::from_raw(snapshot)) };
        }
        // SAFETY: the live snapshot; dropping it releases the key cells,
        // whose `Drop` frees their current epochs.
        unsafe { drop(Box::from_raw(*self.snapshot.get_mut())) };
    }
}

fn push_pred(task: &Arc<Task>, preds: &mut Vec<Arc<Task>>, candidate: &Arc<Task>) {
    if candidate.id != task.id && !preds.iter().any(|p| p.id == candidate.id) {
        preds.push(candidate.clone());
    }
}

/// Tracks dependences and the number of outstanding writers per key (the
/// latter supports `taskwait on(...)`), sharded by key hash and published
/// read-mostly: single-key reads, write completions and `wait_on` polling
/// never take a lock.
pub(crate) struct DependenceTracker {
    shards: Box<[CachePadded<TrackerShard>]>,
    /// Single-key read-only registrations resolved on the lock-free fast
    /// path. Observability counter (tests assert the fast path stays taken
    /// under writer churn); not on any decision path.
    fast_reads: AtomicUsize,
}

impl DependenceTracker {
    pub(crate) fn new() -> Self {
        DependenceTracker {
            shards: (0..SHARDS)
                .map(|_| CachePadded::new(TrackerShard::new()))
                .collect(),
            fast_reads: AtomicUsize::new(0),
        }
    }

    /// Number of single-key read-only registrations that resolved without
    /// taking a shard lock.
    pub(crate) fn fast_path_reads(&self) -> usize {
        self.fast_reads.load(Ordering::Relaxed)
    }

    /// Register a task's footprint and return its predecessors
    /// (deduplicated).
    ///
    /// Single-key read-only footprints resolve lock-free against the
    /// published epoch. Everything else locks **all** shards its footprint
    /// touches, in ascending shard order, before any key is registered —
    /// atomic whole-footprint registration, exactly like a global lock,
    /// which is what keeps concurrent multi-key registrants from wiring
    /// dependence cycles (see the module docs).
    pub(crate) fn register(
        &self,
        task: &Arc<Task>,
        in_keys: &[DepKey],
        out_keys: &[DepKey],
    ) -> Vec<Arc<Task>> {
        if out_keys.is_empty() {
            if let [key] = in_keys {
                if let Some(preds) = self.register_read_fast(task, *key) {
                    self.fast_reads.fetch_add(1, Ordering::Relaxed);
                    return preds;
                }
                // First touch of the key: fall through to the locked path,
                // which inserts the cell and registers the read.
            }
        }

        let mut needed = [false; SHARDS];
        for key in in_keys.iter().chain(out_keys.iter()) {
            needed[shard_of(*key)] = true;
        }
        let mut guards: [Option<MutexGuard<'_, ShardGate>>; SHARDS] = std::array::from_fn(|_| None);
        for (index, guard) in guards.iter_mut().enumerate() {
            if needed[index] {
                *guard = Some(self.shards[index].gate.lock().unwrap());
            }
        }

        let mut preds: Vec<Arc<Task>> = Vec::new();
        for key in in_keys {
            let shard = shard_of(*key);
            let gate = guards[shard].as_mut().expect("shard locked");
            self.shards[shard].register_read_locked(gate, task, *key, &mut preds);
        }
        for key in out_keys {
            let shard = shard_of(*key);
            let gate = guards[shard].as_mut().expect("shard locked");
            self.shards[shard].register_write_locked(gate, task, *key, &mut preds);
        }
        // Everything new is published: try to fold the limbo lists.
        for (index, guard) in guards.iter_mut().enumerate() {
            if let Some(gate) = guard.as_mut() {
                self.shards[index].reclaim(gate);
            }
        }
        preds
    }

    /// Lock-free registration of a single-key read: pin the shard, resolve
    /// the RAW predecessor from the published epoch, CAS onto its reader
    /// list. Returns `None` when the key has never been registered (the
    /// caller then takes the locked insert path).
    fn register_read_fast(&self, task: &Arc<Task>, key: DepKey) -> Option<Vec<Arc<Task>>> {
        let shard = &self.shards[shard_of(key)];
        if shard.draining.load(Ordering::SeqCst) {
            // Reclamation is waiting for the pin count to drain: take the
            // locked path instead of keeping the read side pinned.
            return None;
        }
        shard.pin();
        let result = (|| {
            // SAFETY: pinned — the snapshot (and any epoch reached from it)
            // cannot be freed until the pin is released.
            let snapshot = unsafe { &*shard.snapshot.load(Ordering::SeqCst) };
            let cell = snapshot.get(&key)?;
            loop {
                // SAFETY: pinned, as above.
                let epoch = unsafe { &*cell.epoch.load(Ordering::SeqCst) };
                if epoch.readers.try_push(task.clone()) {
                    // Linearised: we are a reader of exactly this epoch. The
                    // next writer's seal will find us (WAR); our RAW
                    // predecessor is this epoch's writer.
                    let mut preds = Vec::new();
                    if let Some(writer) = &epoch.writer {
                        if writer.id != task.id {
                            preds.push(writer.clone());
                        }
                    }
                    return Some(preds);
                }
                // Sealed: a writer advanced the key; retry against the new
                // epoch (and depend on that writer instead).
            }
        })();
        shard.unpin();
        result
    }

    /// Record the completion of a task that had the given output keys.
    /// Lock-free: one atomic decrement per key on the published cell.
    pub(crate) fn complete_writes(&self, out_keys: &[DepKey]) {
        for key in out_keys {
            self.with_cell(*key, |cell| {
                if let Some(cell) = cell {
                    // Saturating: completions are exactly-once by the
                    // scheduler protocol, but a stray extra completion must
                    // not wrap.
                    let _ = cell.outstanding_writes.fetch_update(
                        Ordering::SeqCst,
                        Ordering::SeqCst,
                        |count| count.checked_sub(1),
                    );
                }
            });
        }
    }

    /// Mark the given output keys poisoned: the task that was to write them
    /// panicked, was cancelled, or was shed, so any value under the key must
    /// be treated as garbage. Sticky for the lifetime of the tracker; must be
    /// called **before** the failed task's successors are released so a
    /// dependent can never observe its inputs clean.
    ///
    /// Poisoning does not replace [`DependenceTracker::complete_writes`]:
    /// the outstanding-write counters still drain normally so `taskwait
    /// on(...)` waiters cannot deadlock on a failed writer.
    pub(crate) fn poison_writes(&self, out_keys: &[DepKey]) {
        for key in out_keys {
            self.with_cell(*key, |cell| {
                if let Some(cell) = cell {
                    cell.poisoned.store(true, Ordering::SeqCst);
                }
            });
        }
    }

    /// Whether the key was written (or should have been written) by a task
    /// that failed. A key never registered is clean.
    pub(crate) fn is_poisoned(&self, key: DepKey) -> bool {
        self.with_cell(key, |cell| {
            cell.map(|cell| cell.poisoned.load(Ordering::SeqCst))
                .unwrap_or(false)
        })
    }

    /// Number of not-yet-completed tasks that write the given key.
    /// Lock-free: pins the shard and reads the published counter.
    pub(crate) fn outstanding_writes(&self, key: DepKey) -> usize {
        self.with_cell(key, |cell| {
            cell.map(|cell| cell.outstanding_writes.load(Ordering::SeqCst))
                .unwrap_or(0)
        })
    }

    /// Current generation stamp of the key's published epoch (test hook for
    /// the read-mostly path; `None` if the key was never registered).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn epoch_generation(&self, key: DepKey) -> Option<u64> {
        self.with_cell(key, |cell| {
            cell.map(|cell| {
                // SAFETY: the shard is pinned (or its gate held) for the
                // duration of this closure — see `with_cell`.
                unsafe { &*cell.epoch.load(Ordering::SeqCst) }.generation
            })
        })
    }

    /// Run `body` on the published cell of `key` (or `None` if the key was
    /// never registered) with the cell's shard protected for the duration:
    /// normally by pinning the read side, or — while a reclaim drain is in
    /// progress — by taking the gate, so pinned readers provably drain.
    fn with_cell<R>(&self, key: DepKey, body: impl FnOnce(Option<&KeyCell>) -> R) -> R {
        let shard = &self.shards[shard_of(key)];
        if shard.draining.load(Ordering::SeqCst) {
            let _gate = shard.gate.lock().unwrap();
            // SAFETY: the gate is held, so the snapshot pointer is stable.
            let snapshot = unsafe { &*shard.snapshot.load(Ordering::Relaxed) };
            return body(snapshot.get(&key).map(Arc::as_ref));
        }
        shard.pin();
        // SAFETY: pinned (see `register_read_fast`).
        let snapshot = unsafe { &*shard.snapshot.load(Ordering::SeqCst) };
        let result = body(snapshot.get(&key).map(Arc::as_ref));
        shard.unpin();
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::{GroupId, GroupState};
    use crate::significance::Significance;
    use crate::task::TaskId;

    fn task(id: u64, outs: Vec<DepKey>) -> Arc<Task> {
        let group = Arc::new(GroupState::new(GroupId::GLOBAL, Arc::from("<t>"), 1.0, 1));
        Arc::new(Task::new(
            TaskId(id),
            group,
            Significance::CRITICAL,
            Box::new(|| {}),
            None,
            outs.clone(),
            !outs.is_empty(),
        ))
    }

    #[test]
    fn key_constructors_are_stable() {
        assert_eq!(DepKey::named("res"), DepKey::named("res"));
        assert_ne!(DepKey::named("res"), DepKey::named("img"));
        assert_eq!(DepKey::from_raw(7).raw(), 7);
        let buf = vec![0u8; 4];
        assert_eq!(DepKey::of(&buf), DepKey::of(&buf));
        assert_eq!(
            DepKey::element(DepKey::named("res"), 3),
            DepKey::element(DepKey::named("res"), 3)
        );
        assert_ne!(
            DepKey::element(DepKey::named("res"), 3),
            DepKey::element(DepKey::named("res"), 4)
        );
    }

    #[test]
    fn raw_dependency_reader_after_writer() {
        let tracker = DependenceTracker::new();
        let key = DepKey::named("x");
        let writer = task(0, vec![key]);
        let reader = task(1, vec![]);
        assert!(tracker.register(&writer, &[], &[key]).is_empty());
        let preds = tracker.register(&reader, &[key], &[]);
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[0].id, writer.id);
    }

    #[test]
    fn independent_readers_have_no_mutual_dependency() {
        let tracker = DependenceTracker::new();
        let key = DepKey::named("x");
        let writer = task(0, vec![key]);
        tracker.register(&writer, &[], &[key]);
        let r1 = task(1, vec![]);
        let r2 = task(2, vec![]);
        assert_eq!(tracker.register(&r1, &[key], &[]).len(), 1);
        let preds = tracker.register(&r2, &[key], &[]);
        assert_eq!(preds.len(), 1, "readers depend only on the writer");
        assert_eq!(preds[0].id, writer.id);
    }

    #[test]
    fn writer_after_readers_gets_war_dependencies() {
        let tracker = DependenceTracker::new();
        let key = DepKey::named("x");
        let w0 = task(0, vec![key]);
        tracker.register(&w0, &[], &[key]);
        let r1 = task(1, vec![]);
        let r2 = task(2, vec![]);
        tracker.register(&r1, &[key], &[]);
        tracker.register(&r2, &[key], &[]);
        let w1 = task(3, vec![key]);
        let preds = tracker.register(&w1, &[], &[key]);
        let ids: Vec<u64> = preds.iter().map(|p| p.id.index()).collect();
        assert_eq!(preds.len(), 3, "WAW on w0 plus WAR on r1, r2: {ids:?}");
    }

    #[test]
    fn writer_after_writer_waw() {
        let tracker = DependenceTracker::new();
        let key = DepKey::named("x");
        let w0 = task(0, vec![key]);
        let w1 = task(1, vec![key]);
        tracker.register(&w0, &[], &[key]);
        let preds = tracker.register(&w1, &[], &[key]);
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[0].id, w0.id);
    }

    #[test]
    fn inout_task_self_dependency_is_ignored() {
        let tracker = DependenceTracker::new();
        let key = DepKey::named("x");
        let t = task(0, vec![key]);
        // Task both reads and writes the same key: it must not depend on
        // itself.
        let preds = tracker.register(&t, &[key], &[key]);
        assert!(preds.is_empty());
    }

    #[test]
    fn predecessors_are_deduplicated() {
        let tracker = DependenceTracker::new();
        let k1 = DepKey::named("a");
        let k2 = DepKey::named("b");
        let w = task(0, vec![k1, k2]);
        tracker.register(&w, &[], &[k1, k2]);
        let r = task(1, vec![]);
        let preds = tracker.register(&r, &[k1, k2], &[]);
        assert_eq!(preds.len(), 1);
    }

    #[test]
    fn disjoint_keys_are_independent() {
        let tracker = DependenceTracker::new();
        let w0 = task(0, vec![DepKey::named("a")]);
        let w1 = task(1, vec![DepKey::named("b")]);
        tracker.register(&w0, &[], &[DepKey::named("a")]);
        let preds = tracker.register(&w1, &[], &[DepKey::named("b")]);
        assert!(preds.is_empty());
    }

    #[test]
    fn outstanding_write_counting() {
        let tracker = DependenceTracker::new();
        let key = DepKey::named("res");
        let w0 = task(0, vec![key]);
        let w1 = task(1, vec![key]);
        tracker.register(&w0, &[], &[key]);
        tracker.register(&w1, &[], &[key]);
        assert_eq!(tracker.outstanding_writes(key), 2);
        tracker.complete_writes(&[key]);
        assert_eq!(tracker.outstanding_writes(key), 1);
        tracker.complete_writes(&[key]);
        assert_eq!(tracker.outstanding_writes(key), 0);
        // Further completions saturate at zero.
        tracker.complete_writes(&[key]);
        assert_eq!(tracker.outstanding_writes(key), 0);
        assert_eq!(tracker.outstanding_writes(DepKey::named("other")), 0);
    }

    #[test]
    fn poison_is_sticky_and_per_key() {
        let tracker = DependenceTracker::new();
        let key = DepKey::named("p");
        let other = DepKey::named("q");
        let w = task(0, vec![key]);
        tracker.register(&w, &[], &[key]);
        tracker.register(&task(1, vec![other]), &[], &[other]);
        assert!(!tracker.is_poisoned(key));
        tracker.poison_writes(&[key]);
        assert!(tracker.is_poisoned(key));
        assert!(
            !tracker.is_poisoned(other),
            "poison must not leak across keys"
        );
        // Completion still drains the counter so `wait_on` cannot hang.
        tracker.complete_writes(&[key]);
        assert_eq!(tracker.outstanding_writes(key), 0);
        assert!(tracker.is_poisoned(key), "poison survives completion");
        // Unregistered keys are clean.
        assert!(!tracker.is_poisoned(DepKey::named("never")));
    }

    #[test]
    fn shard_selection_is_stable_and_in_range() {
        for i in 0..1000u64 {
            let key = DepKey::from_raw(i.wrapping_mul(64)); // address-like alignment
            let s = shard_of(key);
            assert!(s < SHARDS);
            assert_eq!(s, shard_of(key));
        }
        // Aligned (address-style) keys must not all collapse into one shard.
        let mut used = [false; SHARDS];
        for i in 0..256u64 {
            used[shard_of(DepKey::from_raw(0x7f00_0000_0000 + i * 64))] = true;
        }
        assert!(used.iter().filter(|&&u| u).count() > SHARDS / 2);
    }

    #[test]
    fn cross_shard_footprint_is_registered_atomically() {
        // A footprint spanning many shards must produce exactly the same
        // dependences as the old single-lock tracker.
        let tracker = DependenceTracker::new();
        let keys: Vec<DepKey> = (0..64).map(|i| DepKey::from_raw(i * 997)).collect();
        let writer = task(0, keys.clone());
        assert!(tracker.register(&writer, &[], &keys).is_empty());
        let reader = task(1, vec![]);
        let preds = tracker.register(&reader, &keys, &[]);
        assert_eq!(preds.len(), 1, "one deduplicated predecessor across shards");
        assert_eq!(preds[0].id, writer.id);
        for key in &keys {
            assert_eq!(tracker.outstanding_writes(*key), 1);
        }
        tracker.complete_writes(&keys);
        for key in &keys {
            assert_eq!(tracker.outstanding_writes(*key), 0);
        }
    }

    #[test]
    fn concurrent_disjoint_registrations_do_not_interfere() {
        let tracker = Arc::new(DependenceTracker::new());
        let handles: Vec<_> = (0..4u64)
            .map(|thread| {
                let tracker = tracker.clone();
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let key = DepKey::from_raw(thread * 100_000 + i);
                        let t = task(thread * 1_000_000 + i, vec![key]);
                        let preds = tracker.register(&t, &[], &[key]);
                        assert!(preds.is_empty(), "disjoint keys have no predecessors");
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        for thread in 0..4u64 {
            for i in 0..200u64 {
                assert_eq!(
                    tracker.outstanding_writes(DepKey::from_raw(thread * 100_000 + i)),
                    1
                );
            }
        }
    }

    #[test]
    fn chain_of_writers_orders_linearly() {
        let tracker = DependenceTracker::new();
        let key = DepKey::named("x");
        let tasks: Vec<_> = (0..5).map(|i| task(i, vec![key])).collect();
        let mut pred_counts = Vec::new();
        for t in &tasks {
            pred_counts.push(tracker.register(t, &[], &[key]).len());
        }
        assert_eq!(pred_counts, vec![0, 1, 1, 1, 1]);
    }

    #[test]
    fn epoch_generation_advances_per_writer() {
        let tracker = DependenceTracker::new();
        let key = DepKey::named("gen");
        assert_eq!(tracker.epoch_generation(key), None);
        tracker.register(&task(0, vec![key]), &[], &[key]);
        let g1 = tracker.epoch_generation(key).unwrap();
        // Readers do not advance the epoch.
        tracker.register(&task(1, vec![]), &[key], &[]);
        assert_eq!(tracker.epoch_generation(key), Some(g1));
        tracker.register(&task(2, vec![key]), &[], &[key]);
        let g2 = tracker.epoch_generation(key).unwrap();
        assert!(g2 > g1, "a writer must publish a fresh epoch");
    }

    #[test]
    fn fast_path_reader_sees_writer_and_is_sealed_by_next_writer() {
        let tracker = DependenceTracker::new();
        let key = DepKey::named("fast");
        let w0 = task(0, vec![key]);
        tracker.register(&w0, &[], &[key]);
        // Single-key read-only: takes the lock-free path.
        let r = task(1, vec![]);
        let preds = tracker.register(&r, &[key], &[]);
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[0].id, w0.id);
        // The next writer must observe the fast-path reader as a WAR
        // predecessor.
        let w1 = task(2, vec![key]);
        let preds = tracker.register(&w1, &[], &[key]);
        let ids: Vec<u64> = preds.iter().map(|p| p.id.index()).collect();
        assert_eq!(preds.len(), 2, "WAW on w0 plus WAR on r: {ids:?}");
        assert!(ids.contains(&0) && ids.contains(&1));
    }

    #[test]
    fn concurrent_fast_readers_race_writers_without_losing_war_edges() {
        // Readers hammer the lock-free path while writers advance the key's
        // epoch. Invariant: every reader obtains a predecessor chain that is
        // consistent (its RAW writer registered before it), and every reader
        // is seen by some writer's seal or remains in the final epoch —
        // i.e. reader registrations are never silently dropped.
        for _ in 0..20 {
            let tracker = Arc::new(DependenceTracker::new());
            let key = DepKey::named("race");
            let w0 = task(1_000_000, vec![key]);
            tracker.register(&w0, &[], &[key]);
            let readers = 4usize;
            let per_reader = 200u64;
            let reader_handles: Vec<_> = (0..readers as u64)
                .map(|r| {
                    let tracker = tracker.clone();
                    std::thread::spawn(move || {
                        for i in 0..per_reader {
                            let t = task(r * 10_000 + i, vec![]);
                            let preds = tracker.register(&t, &[key], &[]);
                            // Always exactly one RAW predecessor: some writer.
                            assert_eq!(preds.len(), 1);
                            assert!(preds[0].id.index() >= 1_000_000);
                        }
                    })
                })
                .collect();
            let writer_handle = {
                let tracker = tracker.clone();
                std::thread::spawn(move || {
                    let mut sealed_readers = 0usize;
                    for i in 1..50u64 {
                        let w = task(1_000_000 + i, vec![key]);
                        let preds = tracker.register(&w, &[], &[key]);
                        sealed_readers += preds.iter().filter(|p| p.id.index() < 1_000_000).count();
                    }
                    sealed_readers
                })
            };
            for h in reader_handles {
                h.join().unwrap();
            }
            let sealed_readers = writer_handle.join().unwrap();
            // A final writer seals whatever epoch is current, collecting the
            // remaining readers.
            let w_final = task(2_000_000, vec![key]);
            let final_preds = tracker.register(&w_final, &[], &[key]);
            let remaining = final_preds
                .iter()
                .filter(|p| p.id.index() < 1_000_000)
                .count();
            assert_eq!(
                sealed_readers + remaining,
                readers * per_reader as usize,
                "every fast-path reader must be visible to exactly one seal"
            );
        }
    }
}

//! Dependence tracking over declared task footprints.
//!
//! The programming model's `in(...)` / `out(...)` clauses declare the data a
//! task reads and writes; the runtime derives inter-task dependences from
//! them (Section 2: "This information is exploited by the runtime to
//! automatically determine the dependencies among tasks"). The paper reuses
//! the BDDT dependence machinery and notes that dependence tracking "is not
//! affected by our approximate computing programming model"; the
//! implementation here is the standard last-writer/reader-set scheme:
//!
//! * a task that **reads** a key depends on the key's last writer (RAW),
//! * a task that **writes** a key depends on the last writer (WAW) and on
//!   every reader since that writer (WAR), and becomes the new last writer.
//!
//! Keys are opaque [`DepKey`] values; convenience constructors derive them
//! from names or from the address of the data they stand for.
//!
//! # Sharding
//!
//! The tracker used to be one `Mutex<HashMap<..>>`, which made it the last
//! mutex on the spawn path and serialised every footprint-carrying spawn.
//! It is now split into [`SHARDS`] independently locked shards selected by a
//! multiplicative hash of the key, so spawns with disjoint footprints
//! proceed in parallel. A registration locks **all** shards its footprint
//! touches, in ascending shard order: taking them one key at a time would
//! let two concurrent multi-key writers order differently per key and wire a
//! dependence *cycle* (task A waits on B via one key, B on A via another),
//! deadlocking both. Ordered whole-footprint acquisition keeps each task's
//! registration atomic, exactly like the old global lock, while unrelated
//! keys never contend.

use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::{Arc, Mutex, MutexGuard};

use crate::sync::CachePadded;
use crate::task::Task;

/// An opaque dependence key identifying a piece of data (an array, a matrix
/// block, a scalar...) named in a task's `in()`/`out()` footprint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct DepKey(u64);

impl DepKey {
    /// Key from an explicit integer identifier.
    pub fn from_raw(id: u64) -> Self {
        DepKey(id)
    }

    /// Key derived from a string name (stable across calls with equal names).
    pub fn named(name: &str) -> Self {
        let mut hasher = DefaultHasher::new();
        // Distinguish named keys from raw/address keys.
        0xA5u8.hash(&mut hasher);
        name.hash(&mut hasher);
        DepKey(hasher.finish())
    }

    /// Key derived from the address of a value — handy for buffers: two tasks
    /// naming the same buffer get the same key.
    pub fn of<T: ?Sized>(value: &T) -> Self {
        DepKey(value as *const T as *const u8 as usize as u64)
    }

    /// Key for the `i`-th element/row/block of the object identified by
    /// `base` (e.g. one output row of an image).
    pub fn element(base: DepKey, index: usize) -> Self {
        let mut hasher = DefaultHasher::new();
        base.0.hash(&mut hasher);
        index.hash(&mut hasher);
        DepKey(hasher.finish())
    }

    /// The raw 64-bit value.
    pub fn raw(self) -> u64 {
        self.0
    }
}

/// Per-key state: the last task that wrote the key and every task that has
/// read it since that write.
#[derive(Default)]
struct KeyState {
    last_writer: Option<Arc<Task>>,
    readers_since_write: Vec<Arc<Task>>,
}

/// Number of independently locked tracker shards (must be a power of two:
/// `shard_of` selects by the top `log2(SHARDS)` bits of the mixed key).
const SHARDS: usize = 16;
const _: () = assert!(SHARDS.is_power_of_two());

/// The shard a key lives in. Fibonacci-multiplicative mix of the raw key:
/// address-derived keys share alignment in their low bits, so the top bits
/// of the product distribute far better than `raw % SHARDS` would.
fn shard_of(key: DepKey) -> usize {
    let shift = u64::BITS - SHARDS.trailing_zeros();
    (key.raw().wrapping_mul(0x9E37_79B9_7F4A_7C15) >> shift) as usize
}

/// One shard's last-writer/reader-set tables.
#[derive(Default)]
struct TrackerShard {
    keys: HashMap<DepKey, KeyState>,
    outstanding_writes: HashMap<DepKey, usize>,
}

impl TrackerShard {
    fn register_read(&mut self, task: &Arc<Task>, key: DepKey, preds: &mut Vec<Arc<Task>>) {
        // RAW on the last writer, then join the reader set.
        let state = self.keys.entry(key).or_default();
        if let Some(writer) = &state.last_writer {
            push_pred(task, preds, writer);
        }
        if !state.readers_since_write.iter().any(|r| r.id == task.id) {
            state.readers_since_write.push(task.clone());
        }
    }

    fn register_write(&mut self, task: &Arc<Task>, key: DepKey, preds: &mut Vec<Arc<Task>>) {
        // WAW on the last writer, WAR on all readers since that write, then
        // become the new last writer with an empty reader set.
        let state = self.keys.entry(key).or_default();
        if let Some(writer) = &state.last_writer {
            push_pred(task, preds, writer);
        }
        for reader in &state.readers_since_write {
            push_pred(task, preds, reader);
        }
        state.last_writer = Some(task.clone());
        state.readers_since_write.clear();
        *self.outstanding_writes.entry(key).or_insert(0) += 1;
    }
}

fn push_pred(task: &Arc<Task>, preds: &mut Vec<Arc<Task>>, candidate: &Arc<Task>) {
    if candidate.id != task.id && !preds.iter().any(|p| p.id == candidate.id) {
        preds.push(candidate.clone());
    }
}

/// Tracks dependences and the number of outstanding writers per key (the
/// latter supports `taskwait on(...)`), sharded by key hash so spawns with
/// disjoint footprints do not serialise on one lock.
pub(crate) struct DependenceTracker {
    shards: Box<[CachePadded<Mutex<TrackerShard>>]>,
}

impl DependenceTracker {
    pub(crate) fn new() -> Self {
        DependenceTracker {
            shards: (0..SHARDS)
                .map(|_| CachePadded::new(Mutex::new(TrackerShard::default())))
                .collect(),
        }
    }

    /// Register a task's footprint and return its predecessors
    /// (deduplicated). Atomic across the whole footprint: all shards the
    /// footprint touches are locked (in ascending order, see the module
    /// docs) before any key is registered.
    pub(crate) fn register(
        &self,
        task: &Arc<Task>,
        in_keys: &[DepKey],
        out_keys: &[DepKey],
    ) -> Vec<Arc<Task>> {
        let mut needed = [false; SHARDS];
        for key in in_keys.iter().chain(out_keys.iter()) {
            needed[shard_of(*key)] = true;
        }
        let mut guards: [Option<MutexGuard<'_, TrackerShard>>; SHARDS] =
            std::array::from_fn(|_| None);
        for (index, guard) in guards.iter_mut().enumerate() {
            if needed[index] {
                *guard = Some(self.shards[index].lock().unwrap());
            }
        }

        let mut preds: Vec<Arc<Task>> = Vec::new();
        for key in in_keys {
            let shard = guards[shard_of(*key)].as_mut().expect("shard locked");
            shard.register_read(task, *key, &mut preds);
        }
        for key in out_keys {
            let shard = guards[shard_of(*key)].as_mut().expect("shard locked");
            shard.register_write(task, *key, &mut preds);
        }
        preds
    }

    /// Record the completion of a task that had the given output keys.
    pub(crate) fn complete_writes(&self, out_keys: &[DepKey]) {
        for key in out_keys {
            let mut shard = self.shards[shard_of(*key)].lock().unwrap();
            if let Some(count) = shard.outstanding_writes.get_mut(key) {
                *count = count.saturating_sub(1);
            }
        }
    }

    /// Number of not-yet-completed tasks that write the given key.
    pub(crate) fn outstanding_writes(&self, key: DepKey) -> usize {
        self.shards[shard_of(key)]
            .lock()
            .unwrap()
            .outstanding_writes
            .get(&key)
            .copied()
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::{GroupId, GroupState};
    use crate::significance::Significance;
    use crate::task::TaskId;

    fn task(id: u64, outs: Vec<DepKey>) -> Arc<Task> {
        let group = Arc::new(GroupState::new(GroupId::GLOBAL, Arc::from("<t>"), 1.0, 1));
        Arc::new(Task::new(
            TaskId(id),
            group,
            Significance::CRITICAL,
            Box::new(|| {}),
            None,
            outs.clone(),
            !outs.is_empty(),
        ))
    }

    #[test]
    fn key_constructors_are_stable() {
        assert_eq!(DepKey::named("res"), DepKey::named("res"));
        assert_ne!(DepKey::named("res"), DepKey::named("img"));
        assert_eq!(DepKey::from_raw(7).raw(), 7);
        let buf = vec![0u8; 4];
        assert_eq!(DepKey::of(&buf), DepKey::of(&buf));
        assert_eq!(
            DepKey::element(DepKey::named("res"), 3),
            DepKey::element(DepKey::named("res"), 3)
        );
        assert_ne!(
            DepKey::element(DepKey::named("res"), 3),
            DepKey::element(DepKey::named("res"), 4)
        );
    }

    #[test]
    fn raw_dependency_reader_after_writer() {
        let tracker = DependenceTracker::new();
        let key = DepKey::named("x");
        let writer = task(0, vec![key]);
        let reader = task(1, vec![]);
        assert!(tracker.register(&writer, &[], &[key]).is_empty());
        let preds = tracker.register(&reader, &[key], &[]);
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[0].id, writer.id);
    }

    #[test]
    fn independent_readers_have_no_mutual_dependency() {
        let tracker = DependenceTracker::new();
        let key = DepKey::named("x");
        let writer = task(0, vec![key]);
        tracker.register(&writer, &[], &[key]);
        let r1 = task(1, vec![]);
        let r2 = task(2, vec![]);
        assert_eq!(tracker.register(&r1, &[key], &[]).len(), 1);
        let preds = tracker.register(&r2, &[key], &[]);
        assert_eq!(preds.len(), 1, "readers depend only on the writer");
        assert_eq!(preds[0].id, writer.id);
    }

    #[test]
    fn writer_after_readers_gets_war_dependencies() {
        let tracker = DependenceTracker::new();
        let key = DepKey::named("x");
        let w0 = task(0, vec![key]);
        tracker.register(&w0, &[], &[key]);
        let r1 = task(1, vec![]);
        let r2 = task(2, vec![]);
        tracker.register(&r1, &[key], &[]);
        tracker.register(&r2, &[key], &[]);
        let w1 = task(3, vec![key]);
        let preds = tracker.register(&w1, &[], &[key]);
        let ids: Vec<u64> = preds.iter().map(|p| p.id.index()).collect();
        assert_eq!(preds.len(), 3, "WAW on w0 plus WAR on r1, r2: {ids:?}");
    }

    #[test]
    fn writer_after_writer_waw() {
        let tracker = DependenceTracker::new();
        let key = DepKey::named("x");
        let w0 = task(0, vec![key]);
        let w1 = task(1, vec![key]);
        tracker.register(&w0, &[], &[key]);
        let preds = tracker.register(&w1, &[], &[key]);
        assert_eq!(preds.len(), 1);
        assert_eq!(preds[0].id, w0.id);
    }

    #[test]
    fn inout_task_self_dependency_is_ignored() {
        let tracker = DependenceTracker::new();
        let key = DepKey::named("x");
        let t = task(0, vec![key]);
        // Task both reads and writes the same key: it must not depend on
        // itself.
        let preds = tracker.register(&t, &[key], &[key]);
        assert!(preds.is_empty());
    }

    #[test]
    fn predecessors_are_deduplicated() {
        let tracker = DependenceTracker::new();
        let k1 = DepKey::named("a");
        let k2 = DepKey::named("b");
        let w = task(0, vec![k1, k2]);
        tracker.register(&w, &[], &[k1, k2]);
        let r = task(1, vec![]);
        let preds = tracker.register(&r, &[k1, k2], &[]);
        assert_eq!(preds.len(), 1);
    }

    #[test]
    fn disjoint_keys_are_independent() {
        let tracker = DependenceTracker::new();
        let w0 = task(0, vec![DepKey::named("a")]);
        let w1 = task(1, vec![DepKey::named("b")]);
        tracker.register(&w0, &[], &[DepKey::named("a")]);
        let preds = tracker.register(&w1, &[], &[DepKey::named("b")]);
        assert!(preds.is_empty());
    }

    #[test]
    fn outstanding_write_counting() {
        let tracker = DependenceTracker::new();
        let key = DepKey::named("res");
        let w0 = task(0, vec![key]);
        let w1 = task(1, vec![key]);
        tracker.register(&w0, &[], &[key]);
        tracker.register(&w1, &[], &[key]);
        assert_eq!(tracker.outstanding_writes(key), 2);
        tracker.complete_writes(&[key]);
        assert_eq!(tracker.outstanding_writes(key), 1);
        tracker.complete_writes(&[key]);
        assert_eq!(tracker.outstanding_writes(key), 0);
        // Further completions saturate at zero.
        tracker.complete_writes(&[key]);
        assert_eq!(tracker.outstanding_writes(key), 0);
        assert_eq!(tracker.outstanding_writes(DepKey::named("other")), 0);
    }

    #[test]
    fn shard_selection_is_stable_and_in_range() {
        for i in 0..1000u64 {
            let key = DepKey::from_raw(i.wrapping_mul(64)); // address-like alignment
            let s = shard_of(key);
            assert!(s < SHARDS);
            assert_eq!(s, shard_of(key));
        }
        // Aligned (address-style) keys must not all collapse into one shard.
        let mut used = [false; SHARDS];
        for i in 0..256u64 {
            used[shard_of(DepKey::from_raw(0x7f00_0000_0000 + i * 64))] = true;
        }
        assert!(used.iter().filter(|&&u| u).count() > SHARDS / 2);
    }

    #[test]
    fn cross_shard_footprint_is_registered_atomically() {
        // A footprint spanning many shards must produce exactly the same
        // dependences as the old single-lock tracker.
        let tracker = DependenceTracker::new();
        let keys: Vec<DepKey> = (0..64).map(|i| DepKey::from_raw(i * 997)).collect();
        let writer = task(0, keys.clone());
        assert!(tracker.register(&writer, &[], &keys).is_empty());
        let reader = task(1, vec![]);
        let preds = tracker.register(&reader, &keys, &[]);
        assert_eq!(preds.len(), 1, "one deduplicated predecessor across shards");
        assert_eq!(preds[0].id, writer.id);
        for key in &keys {
            assert_eq!(tracker.outstanding_writes(*key), 1);
        }
        tracker.complete_writes(&keys);
        for key in &keys {
            assert_eq!(tracker.outstanding_writes(*key), 0);
        }
    }

    #[test]
    fn concurrent_disjoint_registrations_do_not_interfere() {
        let tracker = Arc::new(DependenceTracker::new());
        let handles: Vec<_> = (0..4u64)
            .map(|thread| {
                let tracker = tracker.clone();
                std::thread::spawn(move || {
                    for i in 0..200u64 {
                        let key = DepKey::from_raw(thread * 100_000 + i);
                        let t = task(thread * 1_000_000 + i, vec![key]);
                        let preds = tracker.register(&t, &[], &[key]);
                        assert!(preds.is_empty(), "disjoint keys have no predecessors");
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        for thread in 0..4u64 {
            for i in 0..200u64 {
                assert_eq!(
                    tracker.outstanding_writes(DepKey::from_raw(thread * 100_000 + i)),
                    1
                );
            }
        }
    }

    #[test]
    fn chain_of_writers_orders_linearly() {
        let tracker = DependenceTracker::new();
        let key = DepKey::named("x");
        let tasks: Vec<_> = (0..5).map(|i| task(i, vec![key])).collect();
        let mut pred_counts = Vec::new();
        for t in &tasks {
            pred_counts.push(tracker.register(t, &[], &[key]).len());
        }
        assert_eq!(pred_counts, vec![0, 1, 1, 1, 1]);
    }
}

//! Execution statistics.
//!
//! Two consumers drive what is collected here:
//!
//! * **Figure 2 / Figure 4** need makespans and busy core-time (fed into the
//!   `sig-energy` power model) plus counts of accurately / approximately
//!   executed and dropped tasks.
//! * **Table 2** needs, per task group, the percentage of
//!   *significance-inverted* tasks (a task executed approximately although a
//!   strictly less significant task of the same group ran accurately) and the
//!   absolute deviation of the achieved accurate-task ratio from the
//!   requested `R_g`.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use crate::significance::SignificanceLevel;
use crate::task::ExecutionMode;

/// Per-group execution log and counters.
#[derive(Debug, Default)]
pub(crate) struct GroupStats {
    accurate: AtomicUsize,
    approximate: AtomicUsize,
    dropped: AtomicUsize,
    /// Log of (significance level, mode) per executed task, used for the
    /// inversion analysis. Tasks are coarse-grained, so the lock is cold.
    log: Mutex<Vec<(SignificanceLevel, ExecutionMode)>>,
}

impl GroupStats {
    /// Record the completion of one task.
    pub(crate) fn record(&self, level: SignificanceLevel, mode: ExecutionMode) {
        match mode {
            ExecutionMode::Accurate => self.accurate.fetch_add(1, Ordering::Relaxed),
            ExecutionMode::Approximate => self.approximate.fetch_add(1, Ordering::Relaxed),
            ExecutionMode::Dropped => self.dropped.fetch_add(1, Ordering::Relaxed),
        };
        self.log.lock().push((level, mode));
    }

    /// Produce an immutable snapshot for reporting.
    pub(crate) fn snapshot(&self, requested_ratio: f64) -> GroupStatsSnapshot {
        let log = self.log.lock().clone();
        GroupStatsSnapshot::from_log(requested_ratio, log)
    }
}

/// Immutable summary of one task group's execution, as used for Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct GroupStatsSnapshot {
    /// The accurate-task ratio requested by the programmer (`R_g`).
    pub requested_ratio: f64,
    /// Number of tasks that executed their accurate body.
    pub accurate: usize,
    /// Number of tasks that executed their approximate body.
    pub approximate: usize,
    /// Number of tasks dropped (approximated without an `approxfun`).
    pub dropped: usize,
    /// Number of tasks counted as *significance inversions*: the minimum
    /// number of decisions that would have to change so that no task ran
    /// non-accurately while a strictly less significant task of the same
    /// group ran accurately.
    pub inverted: usize,
    log: Vec<(SignificanceLevel, ExecutionMode)>,
}

impl GroupStatsSnapshot {
    pub(crate) fn from_log(
        requested_ratio: f64,
        log: Vec<(SignificanceLevel, ExecutionMode)>,
    ) -> Self {
        let mut accurate = 0;
        let mut approximate = 0;
        let mut dropped = 0;
        for (_, mode) in &log {
            match mode {
                ExecutionMode::Accurate => accurate += 1,
                ExecutionMode::Approximate => approximate += 1,
                ExecutionMode::Dropped => dropped += 1,
            }
        }
        // "Inverted" tasks: the minimum number of decisions that would have
        // to flip so that no task executed approximately while a *strictly*
        // less significant task of the same group executed accurately
        // (the constraint of Section 3.2). Computed by scanning all possible
        // significance thresholds: for threshold τ the violations are the
        // accurate tasks strictly below τ plus the non-accurate tasks
        // strictly above τ; the reported count is the minimum over τ.
        let mut accurate_hist = [0usize; crate::significance::NUM_LEVELS];
        let mut other_hist = [0usize; crate::significance::NUM_LEVELS];
        for (level, mode) in &log {
            if *mode == ExecutionMode::Accurate {
                accurate_hist[level.index()] += 1;
            } else {
                other_hist[level.index()] += 1;
            }
        }
        let total_other: usize = other_hist.iter().sum();
        let mut inverted = usize::MAX;
        let mut accurate_below = 0usize;
        let mut other_at_or_below = 0usize;
        for level in 0..crate::significance::NUM_LEVELS {
            other_at_or_below += other_hist[level];
            let cost = accurate_below + (total_other - other_at_or_below);
            inverted = inverted.min(cost);
            accurate_below += accurate_hist[level];
        }
        let inverted = if log.is_empty() { 0 } else { inverted };
        GroupStatsSnapshot {
            requested_ratio,
            accurate,
            approximate,
            dropped,
            inverted,
            log,
        }
    }

    /// Total number of tasks executed in the group.
    pub fn total(&self) -> usize {
        self.accurate + self.approximate + self.dropped
    }

    /// Fraction of tasks that executed accurately, in `[0, 1]`. Returns the
    /// requested ratio when the group is empty (an empty group trivially
    /// satisfies its constraint).
    pub fn achieved_ratio(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            self.requested_ratio
        } else {
            self.accurate as f64 / total as f64
        }
    }

    /// `|requested − achieved|`, the per-group contribution to Table 2's
    /// "Average Ratio Diff" column.
    pub fn ratio_diff(&self) -> f64 {
        (self.requested_ratio - self.achieved_ratio()).abs()
    }

    /// Percentage (0–100) of tasks counted as significance inversions,
    /// Table 2's "Inversed Significance Tasks" column.
    pub fn inversion_percentage(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            100.0 * self.inverted as f64 / total as f64
        }
    }

    /// Raw execution log: one `(significance level, mode)` entry per task.
    pub fn log(&self) -> &[(SignificanceLevel, ExecutionMode)] {
        &self.log
    }
}

/// Whole-runtime counters: totals across all groups plus scheduler-internal
/// event counts used to evaluate policy overhead (Figure 4 discussion).
#[derive(Debug, Default)]
pub struct RuntimeStats {
    spawned: AtomicUsize,
    completed: AtomicUsize,
    accurate: AtomicUsize,
    approximate: AtomicUsize,
    dropped: AtomicUsize,
    steals: AtomicUsize,
    buffer_flushes: AtomicUsize,
    busy_nanos: AtomicU64,
}

impl RuntimeStats {
    pub(crate) fn record_spawn(&self) {
        self.spawned.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_execution(&self, mode: ExecutionMode, busy: Duration) {
        self.completed.fetch_add(1, Ordering::Relaxed);
        match mode {
            ExecutionMode::Accurate => self.accurate.fetch_add(1, Ordering::Relaxed),
            ExecutionMode::Approximate => self.approximate.fetch_add(1, Ordering::Relaxed),
            ExecutionMode::Dropped => self.dropped.fetch_add(1, Ordering::Relaxed),
        };
        self.busy_nanos
            .fetch_add(busy.as_nanos().min(u64::MAX as u128) as u64, Ordering::Relaxed);
    }

    pub(crate) fn record_steal(&self) {
        self.steals.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_flush(&self) {
        self.buffer_flushes.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of tasks spawned so far.
    pub fn spawned(&self) -> usize {
        self.spawned.load(Ordering::Relaxed)
    }

    /// Number of tasks that have finished (in any mode).
    pub fn completed(&self) -> usize {
        self.completed.load(Ordering::Relaxed)
    }

    /// Number of tasks that executed their accurate body.
    pub fn accurate(&self) -> usize {
        self.accurate.load(Ordering::Relaxed)
    }

    /// Number of tasks that executed their approximate body.
    pub fn approximate(&self) -> usize {
        self.approximate.load(Ordering::Relaxed)
    }

    /// Number of dropped tasks.
    pub fn dropped(&self) -> usize {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of successful work-steal operations.
    pub fn steals(&self) -> usize {
        self.steals.load(Ordering::Relaxed)
    }

    /// Number of GTB buffer flushes performed.
    pub fn buffer_flushes(&self) -> usize {
        self.buffer_flushes.load(Ordering::Relaxed)
    }

    /// Total time spent executing task bodies, summed over all workers.
    pub fn busy_core_seconds(&self) -> f64 {
        self.busy_nanos.load(Ordering::Relaxed) as f64 * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level(l: u8) -> SignificanceLevel {
        SignificanceLevel::new(l)
    }

    #[test]
    fn empty_snapshot_is_trivially_satisfied() {
        let snap = GroupStatsSnapshot::from_log(0.5, Vec::new());
        assert_eq!(snap.total(), 0);
        assert_eq!(snap.achieved_ratio(), 0.5);
        assert_eq!(snap.ratio_diff(), 0.0);
        assert_eq!(snap.inversion_percentage(), 0.0);
    }

    #[test]
    fn counts_by_mode() {
        let stats = GroupStats::default();
        stats.record(level(90), ExecutionMode::Accurate);
        stats.record(level(50), ExecutionMode::Approximate);
        stats.record(level(10), ExecutionMode::Dropped);
        let snap = stats.snapshot(0.33);
        assert_eq!(snap.accurate, 1);
        assert_eq!(snap.approximate, 1);
        assert_eq!(snap.dropped, 1);
        assert_eq!(snap.total(), 3);
    }

    #[test]
    fn achieved_ratio_and_diff() {
        let stats = GroupStats::default();
        for _ in 0..7 {
            stats.record(level(80), ExecutionMode::Accurate);
        }
        for _ in 0..3 {
            stats.record(level(20), ExecutionMode::Approximate);
        }
        let snap = stats.snapshot(0.5);
        assert!((snap.achieved_ratio() - 0.7).abs() < 1e-12);
        assert!((snap.ratio_diff() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn no_inversions_when_order_respected() {
        // Accurate tasks are all at least as significant as approximated ones.
        let log = vec![
            (level(90), ExecutionMode::Accurate),
            (level(70), ExecutionMode::Accurate),
            (level(70), ExecutionMode::Approximate),
            (level(10), ExecutionMode::Dropped),
        ];
        let snap = GroupStatsSnapshot::from_log(0.5, log);
        assert_eq!(snap.inverted, 0);
        assert_eq!(snap.inversion_percentage(), 0.0);
    }

    #[test]
    fn inversions_detected() {
        // A level-80 task was approximated while a level-20 task ran
        // accurately: that is one inversion.
        let log = vec![
            (level(20), ExecutionMode::Accurate),
            (level(80), ExecutionMode::Approximate),
            (level(10), ExecutionMode::Approximate),
        ];
        let snap = GroupStatsSnapshot::from_log(0.33, log);
        assert_eq!(snap.inverted, 1);
        assert!((snap.inversion_percentage() - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn all_approximate_has_no_inversions() {
        let log = vec![
            (level(80), ExecutionMode::Approximate),
            (level(10), ExecutionMode::Dropped),
        ];
        let snap = GroupStatsSnapshot::from_log(0.0, log);
        assert_eq!(snap.inverted, 0);
        assert_eq!(snap.achieved_ratio(), 0.0);
        assert_eq!(snap.ratio_diff(), 0.0);
    }

    #[test]
    fn runtime_stats_accumulate() {
        let stats = RuntimeStats::default();
        stats.record_spawn();
        stats.record_spawn();
        stats.record_execution(ExecutionMode::Accurate, Duration::from_millis(10));
        stats.record_execution(ExecutionMode::Dropped, Duration::from_millis(0));
        stats.record_steal();
        stats.record_flush();
        assert_eq!(stats.spawned(), 2);
        assert_eq!(stats.completed(), 2);
        assert_eq!(stats.accurate(), 1);
        assert_eq!(stats.dropped(), 1);
        assert_eq!(stats.approximate(), 0);
        assert_eq!(stats.steals(), 1);
        assert_eq!(stats.buffer_flushes(), 1);
        assert!(stats.busy_core_seconds() >= 0.01);
    }

    #[test]
    fn snapshot_log_is_preserved() {
        let stats = GroupStats::default();
        stats.record(level(42), ExecutionMode::Accurate);
        let snap = stats.snapshot(1.0);
        assert_eq!(snap.log(), &[(level(42), ExecutionMode::Accurate)]);
    }
}

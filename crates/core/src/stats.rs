//! Execution statistics.
//!
//! Two consumers drive what is collected here:
//!
//! * **Figure 2 / Figure 4** need makespans and busy core-time (fed into the
//!   `sig-energy` power model) plus counts of accurately / approximately
//!   executed and dropped tasks.
//! * **Table 2** needs, per task group, the percentage of
//!   *significance-inverted* tasks (a task executed approximately although a
//!   strictly less significant task of the same group ran accurately) and the
//!   absolute deviation of the achieved accurate-task ratio from the
//!   requested `R_g`.
//!
//! Both sets of counters sit on the execution hot path, so they are
//! **sharded per worker** (one cache line each, folded on snapshot). The
//! seed pushed every execution onto a `Mutex<Vec<(level, mode)>>` log; the
//! per-(level × mode) counter matrix kept here carries exactly the same
//! information for the inversion analysis without any lock or allocation.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::Duration;

use crate::significance::{SignificanceLevel, NUM_LEVELS};
use crate::sync::CachePadded;
use crate::task::ExecutionMode;

const MODES: usize = 3;

fn mode_index(mode: ExecutionMode) -> usize {
    match mode {
        ExecutionMode::Accurate => 0,
        ExecutionMode::Approximate => 1,
        ExecutionMode::Dropped => 2,
    }
}

fn mode_from_index(index: usize) -> ExecutionMode {
    match index {
        0 => ExecutionMode::Accurate,
        1 => ExecutionMode::Approximate,
        _ => ExecutionMode::Dropped,
    }
}

/// One worker's (level × mode) execution counters for a group.
struct GroupShard {
    counts: Box<[AtomicU64]>,
    /// Tasks of this group whose body panicked on this worker.
    panicked: AtomicU64,
}

impl GroupShard {
    fn new() -> Self {
        GroupShard {
            counts: (0..NUM_LEVELS * MODES).map(|_| AtomicU64::new(0)).collect(),
            panicked: AtomicU64::new(0),
        }
    }
}

/// Per-group execution counters, sharded per worker.
pub(crate) struct GroupStats {
    shards: Box<[CachePadded<GroupShard>]>,
}

impl std::fmt::Debug for GroupStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupStats")
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl GroupStats {
    /// `shards` should be the runtime's worker count plus one spare for
    /// non-worker threads.
    pub(crate) fn new(shards: usize) -> Self {
        GroupStats {
            shards: (0..shards.max(1))
                .map(|_| CachePadded::new(GroupShard::new()))
                .collect(),
        }
    }

    /// Record the completion of one task on worker `worker`.
    pub(crate) fn record(&self, worker: usize, level: SignificanceLevel, mode: ExecutionMode) {
        let shard = &self.shards[worker.min(self.shards.len() - 1)];
        shard.counts[level.index() * MODES + mode_index(mode)].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a panicked task body on worker `worker`.
    pub(crate) fn record_panicked(&self, worker: usize) {
        let shard = &self.shards[worker.min(self.shards.len() - 1)];
        shard.panicked.fetch_add(1, Ordering::Relaxed);
    }

    /// Produce an immutable snapshot for reporting. O(levels), independent
    /// of the number of executed tasks: everything the snapshot reports is
    /// computed from the folded counter matrix, and the per-task log is only
    /// materialised if [`GroupStatsSnapshot::log`] is actually called.
    pub(crate) fn snapshot(&self, requested_ratio: f64) -> GroupStatsSnapshot {
        let mut folded = vec![0u64; NUM_LEVELS * MODES];
        let mut panicked = 0usize;
        for shard in self.shards.iter() {
            for (total, count) in folded.iter_mut().zip(shard.counts.iter()) {
                *total += count.load(Ordering::Relaxed);
            }
            panicked += shard.panicked.load(Ordering::Relaxed) as usize;
        }
        let mut snapshot = GroupStatsSnapshot::from_histogram(requested_ratio, folded);
        snapshot.panicked = panicked;
        snapshot
    }
}

/// Immutable summary of one task group's execution, as used for Table 2.
#[derive(Debug, Clone)]
pub struct GroupStatsSnapshot {
    /// The accurate-task ratio requested by the programmer (`R_g`).
    pub requested_ratio: f64,
    /// Number of tasks that executed their accurate body.
    pub accurate: usize,
    /// Number of tasks that executed their approximate body.
    pub approximate: usize,
    /// Number of tasks dropped (approximated without an `approxfun`).
    pub dropped: usize,
    /// Number of tasks counted as *significance inversions*: the minimum
    /// number of decisions that would have to change so that no task ran
    /// non-accurately while a strictly less significant task of the same
    /// group ran accurately.
    pub inverted: usize,
    /// Number of tasks of this group whose body panicked. Panicked tasks are
    /// **not** included in [`GroupStatsSnapshot::total`]: they produced no
    /// usable result in any mode.
    pub panicked: usize,
    /// (level × mode) counts; `NUM_LEVELS * MODES` entries.
    hist: Vec<u64>,
    /// Per-task expansion of `hist`, materialised on first `log()` call.
    log: OnceLock<Vec<(SignificanceLevel, ExecutionMode)>>,
}

impl PartialEq for GroupStatsSnapshot {
    fn eq(&self, other: &Self) -> bool {
        // `log` is a cache of `hist`, not state.
        self.requested_ratio == other.requested_ratio && self.hist == other.hist
    }
}

impl GroupStatsSnapshot {
    /// Snapshot from a per-task log (test/compat constructor); the log is
    /// kept verbatim so `log()` preserves its ordering.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn from_log(
        requested_ratio: f64,
        log: Vec<(SignificanceLevel, ExecutionMode)>,
    ) -> Self {
        let mut hist = vec![0u64; NUM_LEVELS * MODES];
        for (level, mode) in &log {
            hist[level.index() * MODES + mode_index(*mode)] += 1;
        }
        let snapshot = GroupStatsSnapshot::from_histogram(requested_ratio, hist);
        let _ = snapshot.log.set(log);
        snapshot
    }

    /// Snapshot from a folded (level × mode) counter matrix — O(levels).
    pub(crate) fn from_histogram(requested_ratio: f64, hist: Vec<u64>) -> Self {
        debug_assert_eq!(hist.len(), NUM_LEVELS * MODES);
        let count_mode = |mode: usize| -> usize {
            (0..NUM_LEVELS)
                .map(|l| hist[l * MODES + mode] as usize)
                .sum()
        };
        let accurate = count_mode(mode_index(ExecutionMode::Accurate));
        let approximate = count_mode(mode_index(ExecutionMode::Approximate));
        let dropped = count_mode(mode_index(ExecutionMode::Dropped));
        // "Inverted" tasks: the minimum number of decisions that would have
        // to flip so that no task executed approximately while a *strictly*
        // less significant task of the same group executed accurately
        // (the constraint of Section 3.2). Computed by scanning all possible
        // significance thresholds: for threshold τ the violations are the
        // accurate tasks strictly below τ plus the non-accurate tasks
        // strictly above τ; the reported count is the minimum over τ.
        let total_other = approximate + dropped;
        let mut inverted = usize::MAX;
        let mut accurate_below = 0usize;
        let mut other_at_or_below = 0usize;
        for level in 0..NUM_LEVELS {
            other_at_or_below +=
                hist[level * MODES + 1] as usize + hist[level * MODES + 2] as usize;
            let cost = accurate_below + (total_other - other_at_or_below);
            inverted = inverted.min(cost);
            accurate_below += hist[level * MODES] as usize;
        }
        let inverted = if accurate + total_other == 0 {
            0
        } else {
            inverted
        };
        GroupStatsSnapshot {
            requested_ratio,
            accurate,
            approximate,
            dropped,
            inverted,
            panicked: 0,
            hist,
            log: OnceLock::new(),
        }
    }

    /// Total number of tasks executed in the group.
    pub fn total(&self) -> usize {
        self.accurate + self.approximate + self.dropped
    }

    /// Fraction of tasks that executed accurately, in `[0, 1]`. Returns the
    /// requested ratio when the group is empty (an empty group trivially
    /// satisfies its constraint).
    pub fn achieved_ratio(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            self.requested_ratio
        } else {
            self.accurate as f64 / total as f64
        }
    }

    /// `|requested − achieved|`, the per-group contribution to Table 2's
    /// "Average Ratio Diff" column.
    pub fn ratio_diff(&self) -> f64 {
        (self.requested_ratio - self.achieved_ratio()).abs()
    }

    /// Percentage (0–100) of tasks counted as significance inversions,
    /// Table 2's "Inversed Significance Tasks" column.
    pub fn inversion_percentage(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            0.0
        } else {
            100.0 * self.inverted as f64 / total as f64
        }
    }

    /// Execution log: one `(significance level, mode)` entry per task,
    /// ordered by level (per-task ordering is not preserved by the sharded
    /// counters). Materialised lazily on first call — O(total tasks).
    pub fn log(&self) -> &[(SignificanceLevel, ExecutionMode)] {
        self.log.get_or_init(|| {
            let mut log = Vec::with_capacity(self.total());
            for level in 0..NUM_LEVELS {
                for mode in 0..MODES {
                    let count = self.hist[level * MODES + mode];
                    let entry = (SignificanceLevel::new(level as u8), mode_from_index(mode));
                    log.extend(std::iter::repeat_n(entry, count as usize));
                }
            }
            log
        })
    }
}

/// One worker's shard of the whole-runtime counters. `completed` is derived
/// (accurate + approximate + dropped), not stored: one fewer atomic op per
/// executed task.
#[derive(Default)]
struct StatShard {
    spawned: AtomicUsize,
    accurate: AtomicUsize,
    approximate: AtomicUsize,
    dropped: AtomicUsize,
    panicked: AtomicUsize,
    cancelled: AtomicUsize,
    shed: AtomicUsize,
    shed_by_level: LevelCounters,
    deadline_misses: AtomicUsize,
    steals: AtomicUsize,
    buffer_flushes: AtomicUsize,
    busy_nanos: AtomicU64,
}

/// One atomic counter per significance level (shed accounting). Boxed so the
/// hot scalar counters of [`StatShard`] keep their cache-line padding.
struct LevelCounters(Box<[AtomicU64]>);

impl Default for LevelCounters {
    fn default() -> Self {
        LevelCounters((0..NUM_LEVELS).map(|_| AtomicU64::new(0)).collect())
    }
}

/// Per-significance-level counts of tasks shed by the brownout overload
/// controller, part of [`OutcomeSummary`].
///
/// The brownout controller promises to shed **strictly lowest-significance
/// first**; an aggregate count cannot distinguish that from shedding at
/// random. The histogram makes the order cheaply checkable: under a single
/// rising threshold, the shed mass must sit in a prefix of the significance
/// axis (see [`ShedHistogram::highest_level`]).
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct ShedHistogram {
    counts: [u64; NUM_LEVELS],
}

impl Default for ShedHistogram {
    fn default() -> Self {
        ShedHistogram {
            counts: [0; NUM_LEVELS],
        }
    }
}

impl ShedHistogram {
    /// Number of tasks shed at exactly `level`.
    pub fn count_at(&self, level: SignificanceLevel) -> u64 {
        self.counts[level.index()]
    }

    /// Total shed count across all levels (equals
    /// [`OutcomeSummary::shed`] once a barrier drained the runtime).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The most significant level that lost a task, if any — the watermark
    /// the brownout threshold reached.
    pub fn highest_level(&self) -> Option<SignificanceLevel> {
        self.counts
            .iter()
            .rposition(|&count| count > 0)
            .map(|index| SignificanceLevel::new(index as u8))
    }

    /// `(level, count)` for every level with a nonzero shed count, in
    /// ascending significance order.
    pub fn nonzero(&self) -> impl Iterator<Item = (SignificanceLevel, u64)> + '_ {
        self.counts
            .iter()
            .enumerate()
            .filter(|(_, &count)| count > 0)
            .map(|(index, &count)| (SignificanceLevel::new(index as u8), count))
    }
}

impl std::fmt::Debug for ShedHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map().entries(self.nonzero()).finish()
    }
}

/// Terminal-outcome summary of everything the runtime has executed (or
/// refused to execute) so far — returned by
/// [`Runtime::wait_all`](crate::runtime::Runtime::wait_all) and
/// [`Runtime::outcomes`](crate::runtime::Runtime::outcomes) so failure is
/// observable instead of silently counted.
///
/// The scheduler maintains exactly-once accounting: every spawned task ends
/// in precisely one of the four terminal outcomes, i.e.
/// `spawned == completed + cancelled + panicked + shed` once a barrier has
/// drained the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OutcomeSummary {
    /// Tasks spawned so far.
    pub spawned: usize,
    /// Tasks that finished a body (accurate, approximate, or dropped-by-policy).
    pub completed: usize,
    /// Tasks skipped because cancellation was requested before they ran.
    pub cancelled: usize,
    /// Tasks whose body panicked.
    pub panicked: usize,
    /// Tasks shed by the brownout overload controller.
    pub shed: usize,
    /// Tasks that completed after their deadline had already passed.
    pub deadline_misses: usize,
    /// Shed counts broken down by significance level, for verifying strict
    /// lowest-first shed order.
    pub shed_by_level: ShedHistogram,
}

impl OutcomeSummary {
    /// `true` when every task so far ran to completion: nothing was
    /// cancelled, panicked, or shed (deadline misses do not count — the work
    /// still produced its result, merely late).
    pub fn is_clean(&self) -> bool {
        self.cancelled == 0 && self.panicked == 0 && self.shed == 0
    }

    /// Number of tasks that terminated without producing a result.
    pub fn failed(&self) -> usize {
        self.cancelled + self.panicked + self.shed
    }
}

/// Whole-runtime counters: totals across all groups plus scheduler-internal
/// event counts used to evaluate policy overhead (Figure 4 discussion).
/// Sharded per worker; readers fold on demand.
pub struct RuntimeStats {
    shards: Box<[CachePadded<StatShard>]>,
}

impl std::fmt::Debug for RuntimeStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("RuntimeStats")
            .field("spawned", &self.spawned())
            .field("completed", &self.completed())
            .field("steals", &self.steals())
            .finish()
    }
}

impl Default for RuntimeStats {
    fn default() -> Self {
        RuntimeStats::new(1)
    }
}

impl RuntimeStats {
    /// Create counters for `workers` workers (plus one shard for non-worker
    /// threads such as the spawning master).
    pub(crate) fn new(workers: usize) -> Self {
        RuntimeStats {
            shards: (0..workers + 1)
                .map(|_| CachePadded::new(StatShard::default()))
                .collect(),
        }
    }

    fn shard(&self, worker: usize) -> &StatShard {
        &self.shards[worker.min(self.shards.len() - 1)]
    }

    /// The shard used by threads that are not workers of this runtime.
    fn external(&self) -> &StatShard {
        &self.shards[self.shards.len() - 1]
    }

    pub(crate) fn record_spawn(&self) {
        self.record_spawns(1);
    }

    /// Record a whole batch of spawns with one counter update — the
    /// statistics half of the amortised batch-injection pipeline.
    pub(crate) fn record_spawns(&self, count: usize) {
        self.external().spawned.fetch_add(count, Ordering::Relaxed);
    }

    pub(crate) fn record_execution(&self, worker: usize, mode: ExecutionMode, busy: Duration) {
        let shard = self.shard(worker);
        match mode {
            ExecutionMode::Accurate => shard.accurate.fetch_add(1, Ordering::Relaxed),
            ExecutionMode::Approximate => shard.approximate.fetch_add(1, Ordering::Relaxed),
            ExecutionMode::Dropped => shard.dropped.fetch_add(1, Ordering::Relaxed),
        };
        shard.busy_nanos.fetch_add(
            busy.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
    }

    /// Record a panicked task body (terminal outcome; the body's time is
    /// still charged as busy time — the core really spent it).
    pub(crate) fn record_panicked(&self, worker: usize, busy: Duration) {
        let shard = self.shard(worker);
        shard.panicked.fetch_add(1, Ordering::Relaxed);
        shard.busy_nanos.fetch_add(
            busy.as_nanos().min(u64::MAX as u128) as u64,
            Ordering::Relaxed,
        );
    }

    /// Record a task skipped by cooperative cancellation.
    pub(crate) fn record_cancelled(&self, worker: usize) {
        self.shard(worker).cancelled.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a task shed by the brownout overload controller, at the shed
    /// task's significance level.
    pub(crate) fn record_shed(&self, worker: usize, level: SignificanceLevel) {
        let shard = self.shard(worker);
        shard.shed.fetch_add(1, Ordering::Relaxed);
        shard.shed_by_level.0[level.index()].fetch_add(1, Ordering::Relaxed);
    }

    /// Record a task that completed past its deadline.
    pub(crate) fn record_deadline_miss(&self, worker: usize) {
        self.shard(worker)
            .deadline_misses
            .fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_steal(&self, worker: usize) {
        self.shard(worker).steals.fetch_add(1, Ordering::Relaxed);
    }

    pub(crate) fn record_flush(&self) {
        self.external()
            .buffer_flushes
            .fetch_add(1, Ordering::Relaxed);
    }

    fn fold(&self, field: impl Fn(&StatShard) -> usize) -> usize {
        self.shards.iter().map(|shard| field(shard)).sum()
    }

    /// Number of tasks spawned so far.
    pub fn spawned(&self) -> usize {
        self.fold(|s| s.spawned.load(Ordering::Relaxed))
    }

    /// Number of tasks that have finished (in any mode).
    pub fn completed(&self) -> usize {
        self.fold(|s| {
            s.accurate.load(Ordering::Relaxed)
                + s.approximate.load(Ordering::Relaxed)
                + s.dropped.load(Ordering::Relaxed)
        })
    }

    /// Number of tasks that executed their accurate body.
    pub fn accurate(&self) -> usize {
        self.fold(|s| s.accurate.load(Ordering::Relaxed))
    }

    /// Number of tasks that executed their approximate body.
    pub fn approximate(&self) -> usize {
        self.fold(|s| s.approximate.load(Ordering::Relaxed))
    }

    /// Number of dropped tasks.
    pub fn dropped(&self) -> usize {
        self.fold(|s| s.dropped.load(Ordering::Relaxed))
    }

    /// Number of tasks whose body panicked.
    pub fn panicked(&self) -> usize {
        self.fold(|s| s.panicked.load(Ordering::Relaxed))
    }

    /// Number of tasks skipped by cooperative cancellation.
    pub fn cancelled(&self) -> usize {
        self.fold(|s| s.cancelled.load(Ordering::Relaxed))
    }

    /// Number of tasks shed by the brownout overload controller.
    pub fn shed(&self) -> usize {
        self.fold(|s| s.shed.load(Ordering::Relaxed))
    }

    /// Per-significance-level breakdown of the shed count.
    pub fn shed_histogram(&self) -> ShedHistogram {
        let mut histogram = ShedHistogram::default();
        for shard in self.shards.iter() {
            for (total, count) in histogram
                .counts
                .iter_mut()
                .zip(shard.shed_by_level.0.iter())
            {
                *total += count.load(Ordering::Relaxed);
            }
        }
        histogram
    }

    /// Number of tasks that completed after their deadline.
    pub fn deadline_misses(&self) -> usize {
        self.fold(|s| s.deadline_misses.load(Ordering::Relaxed))
    }

    /// Terminal-outcome summary (see [`OutcomeSummary`]).
    pub fn outcomes(&self) -> OutcomeSummary {
        OutcomeSummary {
            spawned: self.spawned(),
            completed: self.completed(),
            cancelled: self.cancelled(),
            panicked: self.panicked(),
            shed: self.shed(),
            deadline_misses: self.deadline_misses(),
            shed_by_level: self.shed_histogram(),
        }
    }

    /// Number of successful work-steal operations.
    pub fn steals(&self) -> usize {
        self.fold(|s| s.steals.load(Ordering::Relaxed))
    }

    /// Number of GTB buffer flushes performed.
    pub fn buffer_flushes(&self) -> usize {
        self.fold(|s| s.buffer_flushes.load(Ordering::Relaxed))
    }

    /// Total time spent executing task bodies, summed over all workers.
    pub fn busy_core_seconds(&self) -> f64 {
        self.shards
            .iter()
            .map(|s| s.busy_nanos.load(Ordering::Relaxed))
            .sum::<u64>() as f64
            * 1e-9
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn level(l: u8) -> SignificanceLevel {
        SignificanceLevel::new(l)
    }

    #[test]
    fn empty_snapshot_is_trivially_satisfied() {
        let snap = GroupStatsSnapshot::from_log(0.5, Vec::new());
        assert_eq!(snap.total(), 0);
        assert_eq!(snap.achieved_ratio(), 0.5);
        assert_eq!(snap.ratio_diff(), 0.0);
        assert_eq!(snap.inversion_percentage(), 0.0);
    }

    #[test]
    fn counts_by_mode() {
        let stats = GroupStats::new(4);
        stats.record(0, level(90), ExecutionMode::Accurate);
        stats.record(1, level(50), ExecutionMode::Approximate);
        stats.record(2, level(10), ExecutionMode::Dropped);
        let snap = stats.snapshot(0.33);
        assert_eq!(snap.accurate, 1);
        assert_eq!(snap.approximate, 1);
        assert_eq!(snap.dropped, 1);
        assert_eq!(snap.total(), 3);
    }

    #[test]
    fn shards_fold_into_one_snapshot() {
        let stats = GroupStats::new(3);
        for worker in 0..5 {
            // Worker indices past the shard count clamp to the last shard.
            stats.record(worker, level(40), ExecutionMode::Accurate);
        }
        let snap = stats.snapshot(1.0);
        assert_eq!(snap.accurate, 5);
    }

    #[test]
    fn achieved_ratio_and_diff() {
        let stats = GroupStats::new(2);
        for _ in 0..7 {
            stats.record(0, level(80), ExecutionMode::Accurate);
        }
        for _ in 0..3 {
            stats.record(1, level(20), ExecutionMode::Approximate);
        }
        let snap = stats.snapshot(0.5);
        assert!((snap.achieved_ratio() - 0.7).abs() < 1e-12);
        assert!((snap.ratio_diff() - 0.2).abs() < 1e-12);
    }

    #[test]
    fn no_inversions_when_order_respected() {
        // Accurate tasks are all at least as significant as approximated ones.
        let log = vec![
            (level(90), ExecutionMode::Accurate),
            (level(70), ExecutionMode::Accurate),
            (level(70), ExecutionMode::Approximate),
            (level(10), ExecutionMode::Dropped),
        ];
        let snap = GroupStatsSnapshot::from_log(0.5, log);
        assert_eq!(snap.inverted, 0);
        assert_eq!(snap.inversion_percentage(), 0.0);
    }

    #[test]
    fn inversions_detected() {
        // A level-80 task was approximated while a level-20 task ran
        // accurately: that is one inversion.
        let log = vec![
            (level(20), ExecutionMode::Accurate),
            (level(80), ExecutionMode::Approximate),
            (level(10), ExecutionMode::Approximate),
        ];
        let snap = GroupStatsSnapshot::from_log(0.33, log);
        assert_eq!(snap.inverted, 1);
        assert!((snap.inversion_percentage() - 100.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn all_approximate_has_no_inversions() {
        let log = vec![
            (level(80), ExecutionMode::Approximate),
            (level(10), ExecutionMode::Dropped),
        ];
        let snap = GroupStatsSnapshot::from_log(0.0, log);
        assert_eq!(snap.inverted, 0);
        assert_eq!(snap.achieved_ratio(), 0.0);
        assert_eq!(snap.ratio_diff(), 0.0);
    }

    #[test]
    fn runtime_stats_accumulate() {
        let stats = RuntimeStats::new(2);
        stats.record_spawn();
        stats.record_spawn();
        stats.record_execution(0, ExecutionMode::Accurate, Duration::from_millis(10));
        stats.record_execution(1, ExecutionMode::Dropped, Duration::from_millis(0));
        stats.record_steal(1);
        stats.record_flush();
        assert_eq!(stats.spawned(), 2);
        assert_eq!(stats.completed(), 2);
        assert_eq!(stats.accurate(), 1);
        assert_eq!(stats.dropped(), 1);
        assert_eq!(stats.approximate(), 0);
        assert_eq!(stats.steals(), 1);
        assert_eq!(stats.buffer_flushes(), 1);
        assert!(stats.busy_core_seconds() >= 0.01);
    }

    #[test]
    fn outcome_summary_accounting() {
        let stats = RuntimeStats::new(2);
        for _ in 0..5 {
            stats.record_spawn();
        }
        stats.record_execution(0, ExecutionMode::Accurate, Duration::ZERO);
        stats.record_execution(0, ExecutionMode::Approximate, Duration::ZERO);
        stats.record_panicked(1, Duration::from_millis(1));
        stats.record_cancelled(1);
        stats.record_shed(0, level(30));
        stats.record_deadline_miss(0);
        let o = stats.outcomes();
        assert_eq!(o.spawned, 5);
        assert_eq!(o.completed, 2);
        assert_eq!(
            o.completed + o.cancelled + o.panicked + o.shed,
            o.spawned,
            "terminal outcomes partition the spawn count"
        );
        assert!(!o.is_clean());
        assert_eq!(o.failed(), 3);
        assert_eq!(o.deadline_misses, 1);
        assert!(
            stats.busy_core_seconds() > 0.0,
            "panicked time is busy time"
        );
        assert!(OutcomeSummary::default().is_clean());
    }

    #[test]
    fn shed_histogram_tracks_levels_across_shards() {
        let stats = RuntimeStats::new(2);
        stats.record_shed(0, level(5));
        stats.record_shed(1, level(5));
        stats.record_shed(2, level(20));
        let histogram = stats.shed_histogram();
        assert_eq!(histogram.count_at(level(5)), 2);
        assert_eq!(histogram.count_at(level(20)), 1);
        assert_eq!(histogram.count_at(level(90)), 0);
        assert_eq!(histogram.total(), stats.shed() as u64);
        assert_eq!(histogram.highest_level(), Some(level(20)));
        assert_eq!(
            histogram.nonzero().collect::<Vec<_>>(),
            vec![(level(5), 2), (level(20), 1)]
        );
        assert_eq!(stats.outcomes().shed_by_level, histogram);
        assert_eq!(ShedHistogram::default().highest_level(), None);
        assert!(!format!("{histogram:?}").is_empty());
    }

    #[test]
    fn group_panic_counts_land_in_snapshot() {
        let stats = GroupStats::new(2);
        stats.record(0, level(50), ExecutionMode::Accurate);
        stats.record_panicked(0);
        stats.record_panicked(1);
        let snap = stats.snapshot(1.0);
        assert_eq!(snap.panicked, 2);
        assert_eq!(snap.total(), 1, "panicked tasks are not completions");
    }

    #[test]
    fn snapshot_log_is_preserved() {
        let stats = GroupStats::new(1);
        stats.record(0, level(42), ExecutionMode::Accurate);
        let snap = stats.snapshot(1.0);
        assert_eq!(snap.log(), &[(level(42), ExecutionMode::Accurate)]);
    }
}

//! Task significance values.
//!
//! The programming model (Section 2 of the paper) characterises every task
//! with a *significance* in `[0.0, 1.0]` describing how strongly the task
//! contributes to the quality of the final program output. The special values
//! `1.0` and `0.0` mark tasks that must unconditionally be executed accurately
//! and approximately, respectively.
//!
//! Internally the runtime's LQH policy works on 101 discrete levels
//! (`0.00, 0.01, …, 1.00`), "to simplify the implementation" (Section 3.4);
//! [`SignificanceLevel`] is that quantised form.

use std::cmp::Ordering;
use std::fmt;

/// Number of discrete significance levels used by the runtime (Section 3.4:
/// "we implement 101 discrete (integer) levels").
pub const NUM_LEVELS: usize = 101;

/// A task's significance: a finite value in `[0.0, 1.0]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Significance(f64);

impl Significance {
    /// Significance `1.0`: the task must always run its accurate version.
    pub const CRITICAL: Significance = Significance(1.0);
    /// Significance `0.0`: the task may always be approximated or dropped.
    pub const NEGLIGIBLE: Significance = Significance(0.0);

    /// Create a significance value.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN or outside `[0.0, 1.0]`.
    pub fn new(value: f64) -> Self {
        assert!(
            value.is_finite() && (0.0..=1.0).contains(&value),
            "significance must be a finite value in [0.0, 1.0], got {value}"
        );
        Significance(value)
    }

    /// Create a significance value, clamping out-of-range finite inputs
    /// instead of panicking. NaN still panics.
    pub fn saturating(value: f64) -> Self {
        assert!(!value.is_nan(), "significance must not be NaN");
        Significance(value.clamp(0.0, 1.0))
    }

    /// The raw value in `[0.0, 1.0]`.
    pub fn value(self) -> f64 {
        self.0
    }

    /// Whether this task must unconditionally execute accurately
    /// (significance exactly `1.0`).
    pub fn is_critical(self) -> bool {
        self.0 >= 1.0
    }

    /// Whether this task may unconditionally execute approximately
    /// (significance exactly `0.0`).
    pub fn is_negligible(self) -> bool {
        self.0 <= 0.0
    }

    /// Quantise to one of the runtime's 101 discrete levels.
    pub fn level(self) -> SignificanceLevel {
        SignificanceLevel(((self.0 * 100.0).round()) as u8)
    }
}

impl Default for Significance {
    /// Tasks default to critical significance: unannotated code must never be
    /// silently approximated.
    fn default() -> Self {
        Significance::CRITICAL
    }
}

impl Eq for Significance {}

impl PartialOrd for Significance {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Significance {
    fn cmp(&self, other: &Self) -> Ordering {
        // Values are guaranteed finite, so total order is well-defined.
        self.0
            .partial_cmp(&other.0)
            .expect("significance is finite")
    }
}

impl From<f64> for Significance {
    fn from(value: f64) -> Self {
        Significance::new(value)
    }
}

impl fmt::Display for Significance {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}", self.0)
    }
}

/// A significance value quantised to the runtime's 101 discrete levels
/// (`0` = 0.00 … `100` = 1.00).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SignificanceLevel(u8);

impl SignificanceLevel {
    /// The lowest level (significance 0.00).
    pub const MIN: SignificanceLevel = SignificanceLevel(0);
    /// The highest level (significance 1.00).
    pub const MAX: SignificanceLevel = SignificanceLevel(100);

    /// Create a level from an integer in `0..=100`.
    ///
    /// # Panics
    ///
    /// Panics if `level > 100`.
    pub fn new(level: u8) -> Self {
        assert!(
            (level as usize) < NUM_LEVELS,
            "significance level must be in 0..=100, got {level}"
        );
        SignificanceLevel(level)
    }

    /// The integer level in `0..=100`.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Convert back to a continuous significance value.
    pub fn to_significance(self) -> Significance {
        Significance(self.0 as f64 / 100.0)
    }
}

impl From<Significance> for SignificanceLevel {
    fn from(s: Significance) -> Self {
        s.level()
    }
}

impl fmt::Display for SignificanceLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let s = Significance::new(0.35);
        assert_eq!(s.value(), 0.35);
        assert!(!s.is_critical());
        assert!(!s.is_negligible());
    }

    #[test]
    fn special_values() {
        assert!(Significance::CRITICAL.is_critical());
        assert!(Significance::NEGLIGIBLE.is_negligible());
        assert!(Significance::new(1.0).is_critical());
        assert!(Significance::new(0.0).is_negligible());
    }

    #[test]
    #[should_panic(expected = "significance must be")]
    fn out_of_range_panics() {
        Significance::new(1.5);
    }

    #[test]
    #[should_panic(expected = "significance must be")]
    fn nan_panics() {
        Significance::new(f64::NAN);
    }

    #[test]
    fn saturating_clamps() {
        assert_eq!(Significance::saturating(2.0), Significance::CRITICAL);
        assert_eq!(Significance::saturating(-1.0), Significance::NEGLIGIBLE);
        assert_eq!(Significance::saturating(0.5).value(), 0.5);
    }

    #[test]
    fn ordering_is_by_value() {
        let mut v = [
            Significance::new(0.9),
            Significance::new(0.1),
            Significance::new(0.5),
        ];
        v.sort();
        assert_eq!(v[0].value(), 0.1);
        assert_eq!(v[2].value(), 0.9);
    }

    #[test]
    fn default_is_critical() {
        assert!(Significance::default().is_critical());
    }

    #[test]
    fn quantisation_to_levels() {
        assert_eq!(Significance::new(0.0).level(), SignificanceLevel::MIN);
        assert_eq!(Significance::new(1.0).level(), SignificanceLevel::MAX);
        assert_eq!(Significance::new(0.35).level().index(), 35);
        assert_eq!(Significance::new(0.349).level().index(), 35);
        assert_eq!(Significance::new(0.344).level().index(), 34);
    }

    #[test]
    fn level_roundtrip() {
        for i in 0..=100u8 {
            let level = SignificanceLevel::new(i);
            assert_eq!(level.to_significance().level(), level);
        }
    }

    #[test]
    #[should_panic(expected = "0..=100")]
    fn level_out_of_range_panics() {
        SignificanceLevel::new(101);
    }

    #[test]
    fn display_formatting() {
        assert_eq!(Significance::new(0.35).to_string(), "0.35");
        assert_eq!(SignificanceLevel::new(7).to_string(), "7");
    }

    #[test]
    fn from_f64_conversion() {
        let s: Significance = 0.25.into();
        assert_eq!(s.value(), 0.25);
    }
}

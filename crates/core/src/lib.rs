//! # sig-core — a significance-aware task-parallel runtime
//!
//! Rust reproduction of the programming model and runtime system of
//! *"A Programming Model and Runtime System for Significance-Aware
//! Energy-Efficient Computing"* (Vassiliadis et al., PPoPP 2015).
//!
//! ## The programming model
//!
//! Programs are decomposed into **tasks**. Each task carries a
//! [`Significance`] in `[0.0, 1.0]` describing how much it contributes to the
//! quality of the final output, may provide an **approximate body**
//! (`approxfun`) of lower complexity, belongs to a named **task group**
//! (`label`), and declares its data footprint (`in`/`out`) from which the
//! runtime derives dependences. A group-level **ratio** tells the runtime
//! which fraction of the group's tasks must execute accurately; everything
//! else may run the approximate body or be dropped.
//!
//! ```
//! use sig_core::{Runtime, Policy};
//!
//! let rt = Runtime::builder().workers(4).policy(Policy::GtbMaxBuffer).build();
//! let group = rt.create_group("rows", 1.0);
//!
//! for row in 0..32u32 {
//!     rt.task(move || { /* accurate computation of `row` */ })
//!         .approx(move || { /* cheaper approximation of `row` */ })
//!         .significance(((row % 9) + 1) as f64 / 10.0)
//!         .group(&group)
//!         .spawn();
//! }
//! // Execute at least the 35% most significant tasks accurately.
//! rt.wait_group_with_ratio(&group, 0.35);
//! assert_eq!(rt.group_stats(&group).total(), 32);
//! ```
//!
//! The [`task!`] and [`taskwait!`] macros offer a pragma-like spelling of the
//! same API.
//!
//! ## The runtime
//!
//! The runtime is a master/slave work-sharing scheduler: the spawning thread
//! distributes tasks round-robin over per-worker lock-free queues (a
//! Chase–Lev-style stealable deque plus an MPMC inbox each, see the `deque`
//! module); idle workers steal, and park on targeted event-driven wakeups
//! when there is nothing to steal. Executing a ready task takes zero mutex
//! acquisitions on the worker fast path. Three significance-aware policies
//! decide accurate vs. approximate execution (see [`Policy`]): **GTB**
//! (global task buffering, with bounded or unbounded buffer) and **LQH**
//! (local queue history), plus the significance-agnostic baseline. Execution
//! statistics needed to reproduce the paper's Table 2 (ratio deviation,
//! significance inversions) are collected per group in per-worker shards.

#![warn(missing_docs)]

pub mod deps;
mod deque;
pub mod env;
pub mod faults;
pub mod group;
pub mod handle;
mod macros;
pub mod policy;
pub mod runtime;
pub mod shared;
pub mod significance;
pub mod stats;
mod sync;
pub mod task;

pub use deps::DepKey;
pub use env::{
    AdaptiveGovernor, ApproxGovernor, DispatchContext, DispatchDecision, EnergyReport, EnvTotals,
    ExecutionEnv, FrequencyCapGovernor, Governor, NominalGovernor, RaceToIdleGovernor,
    SignificanceLadderGovernor, WorkerEnergy,
};
pub use faults::{FaultAction, FaultPlan};
pub use group::{GroupId, TaskGroup};
pub use handle::{SpawnHandle, TaskOutcome};
pub use policy::Policy;
pub use runtime::{
    BatchBuilder, BatchTask, HandledTaskBuilder, Runtime, RuntimeBuilder, TaskBuilder, TaskIdRange,
};
pub use shared::{RegionWriter, SharedGrid};
pub use significance::{Significance, SignificanceLevel, NUM_LEVELS};
pub use stats::{GroupStatsSnapshot, OutcomeSummary, RuntimeStats, ShedHistogram};
pub use task::{CancelToken, ExecutionMode, TaskId};

// Re-exported so downstream crates that only depend on `sig-core` can name
// the energy types the execution environment is built from.
pub use sig_energy::{
    BudgetConfig, BudgetController, BudgetSetpoint, BudgetTarget, EnergyBreakdown, EnergyReading,
    FrequencyScale, PowerModel, SleepState, SplitEstimator, TransitionCost,
};

/// Commonly used items, re-exported for glob import.
pub mod prelude {
    pub use crate::deps::DepKey;
    pub use crate::env::{
        AdaptiveGovernor, ApproxGovernor, FrequencyCapGovernor, Governor, RaceToIdleGovernor,
        SignificanceLadderGovernor,
    };
    pub use crate::faults::{FaultAction, FaultPlan};
    pub use crate::group::TaskGroup;
    pub use crate::handle::{SpawnHandle, TaskOutcome};
    pub use crate::policy::Policy;
    pub use crate::runtime::{BatchTask, Runtime, RuntimeBuilder, TaskIdRange};
    pub use crate::shared::SharedGrid;
    pub use crate::significance::Significance;
    pub use crate::stats::OutcomeSummary;
    pub use crate::task::CancelToken;
    pub use crate::task::ExecutionMode;
    pub use crate::{spawn_batch, task, taskwait};
    pub use sig_energy::{FrequencyScale, SleepState, TransitionCost};
}

//! Deterministic fault injection for chaos testing.
//!
//! A [`FaultPlan`] maps every task id to at most one [`FaultAction`] — a
//! body panic, a worker stall before the task starts, or a dilated
//! execution — using a seeded integer hash of the id. Determinism is the
//! point: the same `(seed, task id)` pair always yields the same action, so
//! a failing chaos run reproduces exactly from its seed, with no wall-clock
//! or RNG state involved.
//!
//! The plan is installed at build time
//! ([`RuntimeBuilder::fault_plan`](crate::runtime::RuntimeBuilder::fault_plan))
//! and consulted once per non-system task at dispatch. Production
//! configurations carry no plan and pay one `Option` check.

use std::time::Duration;

/// The fault injected into one task, if any.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultAction {
    /// The task body panics instead of running.
    Panic,
    /// The executing worker stalls for the given pause before the task
    /// starts (outside the task's timed window): a slow or descheduled
    /// worker.
    Stall(Duration),
    /// The task's execution is dilated by the given extra time (inside the
    /// timed window): a task that runs long and endangers deadlines.
    Dilate(Duration),
}

/// A seeded, deterministic fault-injection plan.
///
/// Rates are expressed per mille (0..=1000) of tasks; the three rates must
/// sum to at most 1000. Which tasks are hit is a pure function of the seed
/// and the task id.
///
/// ```
/// use sig_core::FaultPlan;
/// use std::time::Duration;
///
/// let plan = FaultPlan::new(42)
///     .panics(100)
///     .stalls(50, Duration::from_micros(200))
///     .dilation(50, Duration::from_micros(100));
/// // Deterministic: the same id always draws the same action.
/// assert_eq!(plan.decide(7), plan.decide(7));
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    seed: u64,
    panic_per_mille: u16,
    stall_per_mille: u16,
    stall: Duration,
    dilate_per_mille: u16,
    dilation: Duration,
}

impl FaultPlan {
    /// An empty plan (no faults) with the given seed.
    pub fn new(seed: u64) -> Self {
        FaultPlan {
            seed,
            ..FaultPlan::default()
        }
    }

    /// The plan's seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Inject a body panic into `per_mille` out of every 1000 tasks.
    pub fn panics(mut self, per_mille: u16) -> Self {
        self.panic_per_mille = per_mille;
        self.check_rates();
        self
    }

    /// Stall the executing worker for `pause` on `per_mille` out of every
    /// 1000 tasks.
    pub fn stalls(mut self, per_mille: u16, pause: Duration) -> Self {
        self.stall_per_mille = per_mille;
        self.stall = pause;
        self.check_rates();
        self
    }

    /// Dilate the execution of `per_mille` out of every 1000 tasks by
    /// `extra`.
    pub fn dilation(mut self, per_mille: u16, extra: Duration) -> Self {
        self.dilate_per_mille = per_mille;
        self.dilation = extra;
        self.check_rates();
        self
    }

    fn check_rates(&self) {
        let total = self.panic_per_mille as u32
            + self.stall_per_mille as u32
            + self.dilate_per_mille as u32;
        assert!(
            total <= 1000,
            "fault rates must sum to at most 1000 per mille, got {total}"
        );
    }

    /// The fault injected into task `id`, if any. Pure function of
    /// `(seed, id)`.
    pub fn decide(&self, id: u64) -> Option<FaultAction> {
        // splitmix64-style finaliser over the seeded id: cheap, stateless,
        // and well-mixed enough that per-mille rates hold across any id
        // stride a workload produces.
        let mut x = self.seed ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        x ^= x >> 30;
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        x ^= x >> 27;
        x = x.wrapping_mul(0x94D0_49BB_1331_11EB);
        x ^= x >> 31;
        let roll = (x % 1000) as u16;
        if roll < self.panic_per_mille {
            return Some(FaultAction::Panic);
        }
        if roll < self.panic_per_mille + self.stall_per_mille {
            return Some(FaultAction::Stall(self.stall));
        }
        if roll < self.panic_per_mille + self.stall_per_mille + self.dilate_per_mille {
            return Some(FaultAction::Dilate(self.dilation));
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_plan_never_faults() {
        let plan = FaultPlan::new(7);
        assert!((0..10_000).all(|id| plan.decide(id).is_none()));
    }

    #[test]
    fn decisions_are_deterministic_per_seed_and_id() {
        let plan = FaultPlan::new(1234)
            .panics(100)
            .stalls(100, Duration::from_micros(50))
            .dilation(100, Duration::from_micros(50));
        for id in 0..5_000 {
            assert_eq!(plan.decide(id), plan.decide(id));
        }
        let replay = plan.clone();
        let a: Vec<_> = (0..5_000).map(|id| plan.decide(id)).collect();
        let b: Vec<_> = (0..5_000).map(|id| replay.decide(id)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_seeds_hit_different_tasks() {
        let a = FaultPlan::new(1).panics(100);
        let b = FaultPlan::new(2).panics(100);
        let differs = (0..10_000u64).any(|id| a.decide(id) != b.decide(id));
        assert!(differs, "seeds must produce distinct fault sets");
    }

    #[test]
    fn rates_are_roughly_respected() {
        let plan = FaultPlan::new(99)
            .panics(150)
            .stalls(50, Duration::from_micros(1))
            .dilation(100, Duration::from_micros(1));
        const N: u64 = 100_000;
        let mut panics = 0u64;
        let mut stalls = 0u64;
        let mut dilations = 0u64;
        for id in 0..N {
            match plan.decide(id) {
                Some(FaultAction::Panic) => panics += 1,
                Some(FaultAction::Stall(_)) => stalls += 1,
                Some(FaultAction::Dilate(_)) => dilations += 1,
                None => {}
            }
        }
        let tolerance =
            |expected: u64, got: u64| (got as i64 - expected as i64).unsigned_abs() < expected / 5;
        assert!(tolerance(N * 150 / 1000, panics), "panics: {panics}");
        assert!(tolerance(N * 50 / 1000, stalls), "stalls: {stalls}");
        assert!(
            tolerance(N * 100 / 1000, dilations),
            "dilations: {dilations}"
        );
    }

    #[test]
    #[should_panic(expected = "sum to at most 1000")]
    fn overfull_rates_rejected() {
        let _ = FaultPlan::new(0).panics(600).stalls(500, Duration::ZERO);
    }
}

//! Shared output buffers for task-parallel kernels.
//!
//! The benchmarks of the paper have tasks write disjoint regions of a common
//! output array (one image row per task in Sobel, one block of coefficients
//! in DCT, one chunk of particles in Fluidanimate, ...). In C that is simply
//! a pointer into a shared array; in safe Rust it needs a small abstraction:
//!
//! * [`SharedGrid<T>`] is a 2-D row-major buffer shared between the master
//!   and the workers.
//! * [`RegionWriter<T>`] is an exclusive, `Send` handle to one contiguous
//!   region (e.g. one row), created before the task is spawned and moved into
//!   the task closure.
//!
//! Exclusivity is enforced at runtime: creating a second outstanding writer
//! for an overlapping region panics, and reading the buffer back
//! ([`SharedGrid::snapshot`] / [`SharedGrid::into_vec`]) panics while any
//! writer is still alive. Combined with the runtime's dependence tracking
//! (tasks writing overlapping footprints are ordered), this gives the
//! convenience of the C idiom without data races.

use std::cell::UnsafeCell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use std::sync::{Mutex, PoisonError};

struct GridInner<T> {
    data: UnsafeCell<Vec<T>>,
    rows: usize,
    cols: usize,
    /// Currently outstanding writers, as half-open index ranges.
    outstanding: Mutex<Vec<(usize, usize)>>,
    writer_count: AtomicUsize,
}

// SAFETY: all mutable access goes through `RegionWriter`s whose ranges are
// checked for disjointness at creation time, and reads require zero
// outstanding writers.
unsafe impl<T: Send> Send for GridInner<T> {}
unsafe impl<T: Send> Sync for GridInner<T> {}

/// A 2-D row-major buffer whose rows (or arbitrary contiguous regions) can be
/// written concurrently by tasks through [`RegionWriter`] handles.
pub struct SharedGrid<T> {
    inner: Arc<GridInner<T>>,
}

impl<T> Clone for SharedGrid<T> {
    fn clone(&self) -> Self {
        SharedGrid {
            inner: self.inner.clone(),
        }
    }
}

impl<T: Clone + Send + 'static> SharedGrid<T> {
    /// Create a grid of `rows × cols` elements, all initialised to `fill`.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn new(rows: usize, cols: usize, fill: T) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be non-zero");
        SharedGrid {
            inner: Arc::new(GridInner {
                data: UnsafeCell::new(vec![fill; rows * cols]),
                rows,
                cols,
                outstanding: Mutex::new(Vec::new()),
                writer_count: AtomicUsize::new(0),
            }),
        }
    }

    /// Create a grid from an existing row-major buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<T>) -> Self {
        assert!(rows > 0 && cols > 0, "grid dimensions must be non-zero");
        assert_eq!(data.len(), rows * cols, "buffer length must be rows * cols");
        SharedGrid {
            inner: Arc::new(GridInner {
                data: UnsafeCell::new(data),
                rows,
                cols,
                outstanding: Mutex::new(Vec::new()),
                writer_count: AtomicUsize::new(0),
            }),
        }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.inner.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.inner.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.inner.rows * self.inner.cols
    }

    /// Whether the grid is empty (never true: dimensions are non-zero).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Create an exclusive writer for row `row`.
    ///
    /// # Panics
    ///
    /// Panics if the row is out of bounds or overlaps a still-outstanding
    /// writer.
    pub fn row_writer(&self, row: usize) -> RegionWriter<T> {
        assert!(row < self.inner.rows, "row {row} out of bounds");
        let start = row * self.inner.cols;
        self.region_writer(start, start + self.inner.cols)
    }

    /// Create an exclusive writer for the half-open element range
    /// `start..end` (row-major indices).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty, out of bounds, or overlaps a
    /// still-outstanding writer.
    pub fn region_writer(&self, start: usize, end: usize) -> RegionWriter<T> {
        assert!(start < end, "region must be non-empty");
        assert!(end <= self.len(), "region {start}..{end} out of bounds");
        {
            // The overlap assert below panics while holding the lock; the
            // list is not modified before the panic, so recovering the
            // poisoned mutex (here and in Drop) is sound.
            let mut outstanding = self
                .inner
                .outstanding
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            for &(s, e) in outstanding.iter() {
                assert!(
                    end <= s || start >= e,
                    "region {start}..{end} overlaps outstanding writer {s}..{e}"
                );
            }
            outstanding.push((start, end));
        }
        self.inner.writer_count.fetch_add(1, Ordering::AcqRel);
        RegionWriter {
            grid: self.inner.clone(),
            start,
            end,
        }
    }

    /// Copy the whole buffer out.
    ///
    /// # Panics
    ///
    /// Panics if any writer is still outstanding (synchronise with the
    /// runtime barrier first).
    pub fn snapshot(&self) -> Vec<T> {
        assert_eq!(
            self.inner.writer_count.load(Ordering::Acquire),
            0,
            "cannot snapshot while writers are outstanding"
        );
        // SAFETY: no writers exist, so no &mut aliases the buffer.
        unsafe { (*self.inner.data.get()).clone() }
    }

    /// Consume the grid and return the underlying buffer if this is the last
    /// handle; otherwise falls back to a snapshot copy.
    ///
    /// # Panics
    ///
    /// Panics if any writer is still outstanding.
    pub fn into_vec(self) -> Vec<T> {
        assert_eq!(
            self.inner.writer_count.load(Ordering::Acquire),
            0,
            "cannot consume while writers are outstanding"
        );
        match Arc::try_unwrap(self.inner) {
            Ok(inner) => inner.data.into_inner(),
            Err(shared) => {
                // SAFETY: no writers exist (checked above) and we only read.
                unsafe { (*shared.data.get()).clone() }
            }
        }
    }
}

/// Exclusive write access to one contiguous region of a [`SharedGrid`].
///
/// The writer is `Send` so it can move into a task closure; it releases its
/// region when dropped.
pub struct RegionWriter<T> {
    grid: Arc<GridInner<T>>,
    start: usize,
    end: usize,
}

// SAFETY: the region is exclusively owned by this writer (enforced at
// creation), so sending it to another thread is sound for Send element types.
unsafe impl<T: Send> Send for RegionWriter<T> {}

impl<T> RegionWriter<T> {
    /// Length of the writable region.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the region is empty (never true by construction).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Mutable view of the region.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        // SAFETY: `start..end` is disjoint from every other outstanding
        // writer and readers are excluded while any writer exists.
        unsafe {
            let vec = &mut *self.grid.data.get();
            &mut vec[self.start..self.end]
        }
    }

    /// Read-only view of the region.
    pub fn as_slice(&self) -> &[T] {
        // SAFETY: as above; this writer is the only accessor of the region.
        unsafe {
            let vec = &*self.grid.data.get();
            &vec[self.start..self.end]
        }
    }

    /// Write one element of the region.
    ///
    /// # Panics
    ///
    /// Panics if `offset` is outside the region.
    pub fn set(&mut self, offset: usize, value: T) {
        assert!(offset < self.len(), "offset {offset} outside region");
        self.as_mut_slice()[offset] = value;
    }
}

impl<T> Drop for RegionWriter<T> {
    fn drop(&mut self) {
        let mut outstanding = self
            .grid
            .outstanding
            .lock()
            .unwrap_or_else(PoisonError::into_inner);
        if let Some(pos) = outstanding
            .iter()
            .position(|&(s, e)| s == self.start && e == self.end)
        {
            outstanding.swap_remove(pos);
        }
        self.grid.writer_count.fetch_sub(1, Ordering::AcqRel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_dimensions() {
        let grid = SharedGrid::new(4, 8, 0u8);
        assert_eq!(grid.rows(), 4);
        assert_eq!(grid.cols(), 8);
        assert_eq!(grid.len(), 32);
        assert!(!grid.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-zero")]
    fn zero_dimensions_panic() {
        SharedGrid::new(0, 8, 0u8);
    }

    #[test]
    fn from_vec_roundtrip() {
        let grid = SharedGrid::from_vec(2, 3, vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(grid.snapshot(), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(grid.into_vec(), vec![1, 2, 3, 4, 5, 6]);
    }

    #[test]
    #[should_panic(expected = "rows * cols")]
    fn from_vec_wrong_length_panics() {
        SharedGrid::from_vec(2, 3, vec![0u8; 5]);
    }

    #[test]
    fn row_writer_writes_correct_row() {
        let grid = SharedGrid::new(3, 4, 0u32);
        {
            let mut w = grid.row_writer(1);
            for (i, cell) in w.as_mut_slice().iter_mut().enumerate() {
                *cell = i as u32 + 10;
            }
        }
        let data = grid.snapshot();
        assert_eq!(&data[4..8], &[10, 11, 12, 13]);
        assert!(data[..4].iter().all(|&v| v == 0));
        assert!(data[8..].iter().all(|&v| v == 0));
    }

    #[test]
    fn disjoint_writers_coexist() {
        let grid = SharedGrid::new(2, 4, 0u8);
        let mut w0 = grid.row_writer(0);
        let mut w1 = grid.row_writer(1);
        w0.set(0, 1);
        w1.set(3, 2);
        drop((w0, w1));
        let data = grid.snapshot();
        assert_eq!(data[0], 1);
        assert_eq!(data[7], 2);
    }

    #[test]
    #[should_panic(expected = "overlaps outstanding writer")]
    fn overlapping_writers_panic() {
        let grid = SharedGrid::new(2, 4, 0u8);
        let _w0 = grid.row_writer(0);
        let _w1 = grid.row_writer(0);
    }

    #[test]
    fn writer_released_on_drop() {
        let grid = SharedGrid::new(2, 4, 0u8);
        drop(grid.row_writer(0));
        // Re-acquiring the same row after the drop is fine.
        let _w = grid.row_writer(0);
    }

    #[test]
    #[should_panic(expected = "outstanding")]
    fn snapshot_with_outstanding_writer_panics() {
        let grid = SharedGrid::new(2, 4, 0u8);
        let _w = grid.row_writer(0);
        let _ = grid.snapshot();
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_row_panics() {
        let grid = SharedGrid::new(2, 4, 0u8);
        let _ = grid.row_writer(2);
    }

    #[test]
    fn region_writer_arbitrary_range() {
        let grid = SharedGrid::new(1, 10, 0i32);
        {
            let mut w = grid.region_writer(3, 6);
            assert_eq!(w.len(), 3);
            w.as_mut_slice().copy_from_slice(&[7, 8, 9]);
            assert_eq!(w.as_slice(), &[7, 8, 9]);
        }
        assert_eq!(grid.snapshot()[3..6], [7, 8, 9]);
    }

    #[test]
    fn writers_work_across_threads() {
        let grid = SharedGrid::new(8, 64, 0u64);
        let mut handles = Vec::new();
        for row in 0..8 {
            let mut writer = grid.row_writer(row);
            handles.push(std::thread::spawn(move || {
                for (i, cell) in writer.as_mut_slice().iter_mut().enumerate() {
                    *cell = (row * 1000 + i) as u64;
                }
            }));
        }
        for h in handles {
            h.join().unwrap();
        }
        let data = grid.snapshot();
        assert_eq!(data[0], 0);
        assert_eq!(data[64], 1000);
        assert_eq!(data[7 * 64 + 63], 7063);
    }

    #[test]
    fn clone_shares_storage() {
        let grid = SharedGrid::new(1, 4, 0u8);
        let alias = grid.clone();
        {
            let mut w = grid.row_writer(0);
            w.set(2, 9);
        }
        assert_eq!(alias.snapshot()[2], 9);
    }
}

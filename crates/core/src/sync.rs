//! Low-level synchronisation primitives for the lock-free scheduler.
//!
//! Three small building blocks keep the runtime's hot path free of mutexes:
//!
//! * [`CachePadded`] — aligns per-worker state to its own cache line so
//!   sharded counters and parkers do not false-share.
//! * [`Parker`] — a per-worker sleep/wake slot built on
//!   `std::thread::park`/`unpark`. The park-token semantics of the standard
//!   library (an `unpark` delivered before `park` makes the next `park`
//!   return immediately) combined with a SeqCst sleep flag give a
//!   wakeup protocol with no timed polling and no lost wakeups.
//! * [`EventCount`] — a barrier waiter used by `taskwait`. Completions only
//!   touch one atomic when nobody waits; a waiter registers itself before
//!   re-checking its predicate, so the notify side can skip the mutex
//!   entirely in the common no-waiter case without races.

use std::sync::atomic::{AtomicU8, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, OnceLock};
use std::thread::Thread;

/// Pads and aligns its contents to one 64-byte cache line, preventing false
/// sharing between per-worker shards.
#[derive(Debug, Default)]
#[repr(align(64))]
pub(crate) struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    pub(crate) fn new(value: T) -> Self {
        CachePadded { value }
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.value
    }
}

const AWAKE: u8 = 0;
const SLEEPING: u8 = 1;

/// One worker's sleep state plus its thread handle.
///
/// Protocol (all SeqCst so the flag and the queue state form a Dekker pair):
///
/// * the **worker** stores `SLEEPING`, then re-checks every queue; only if
///   all are empty does it call `std::thread::park()`;
/// * a **producer** pushes to a queue first, then loads the flag; if it reads
///   `SLEEPING` it unparks the worker.
///
/// Either the producer's push is visible to the worker's re-check, or the
/// worker's `SLEEPING` store is visible to the producer's load — so the
/// worker can never sleep through a push. An `unpark` that arrives between
/// the flag store and the `park()` is banked as the park token.
#[derive(Debug, Default)]
pub(crate) struct Parker {
    state: AtomicU8,
    thread: OnceLock<Thread>,
}

impl Parker {
    /// Bind the parker to the calling thread. Must run before the worker's
    /// first sleep attempt; producers never unpark an unregistered parker
    /// because the worker registers before it can ever store `SLEEPING`.
    pub(crate) fn register(&self) {
        let _ = self.thread.set(std::thread::current());
    }

    /// Announce intent to sleep. Follow with a full queue re-check, then
    /// either [`Parker::cancel`] or `std::thread::park()`.
    pub(crate) fn prepare_park(&self) {
        self.state.store(SLEEPING, Ordering::SeqCst);
    }

    /// Abandon or finish a sleep attempt.
    pub(crate) fn cancel(&self) {
        self.state.store(AWAKE, Ordering::SeqCst);
    }

    /// Unpark the worker if (and only if) it announced sleep. Returns whether
    /// a wakeup was delivered.
    ///
    /// The CAS coalesces wakeups: exactly one producer per sleep episode pays
    /// the `unpark` syscall; everyone else sees `AWAKE` and skips it. Without
    /// this, a burst of pushes to a sleeping worker becomes a futex storm.
    pub(crate) fn unpark_if_sleeping(&self) -> bool {
        // Cheap load first: the scan over parkers runs on every push, and a
        // CAS (even a failing one) would bounce the line around.
        if self.state.load(Ordering::SeqCst) != SLEEPING {
            return false;
        }
        if self
            .state
            .compare_exchange(SLEEPING, AWAKE, Ordering::SeqCst, Ordering::SeqCst)
            .is_ok()
        {
            if let Some(thread) = self.thread.get() {
                thread.unpark();
                return true;
            }
        }
        false
    }

    /// Unconditional unpark, used for shutdown.
    pub(crate) fn unpark_always(&self) {
        if let Some(thread) = self.thread.get() {
            thread.unpark();
        }
    }
}

/// Blocking predicate waiter for `taskwait`-style barriers.
///
/// The notify side is a single SeqCst load when no thread waits, replacing
/// the seed design's mutex acquisition plus condvar broadcast on **every**
/// task completion. Waiters register in `waiters` *before* re-checking their
/// predicate; notifiers make the predicate true *before* loading `waiters`.
/// In the SeqCst total order one of the two always observes the other, so a
/// waiter can never sleep through the notification that would have released
/// it — without any timed re-check.
#[derive(Debug, Default)]
pub(crate) struct EventCount {
    waiters: AtomicUsize,
    lock: Mutex<()>,
    condvar: Condvar,
}

impl EventCount {
    /// Block until `predicate()` returns true. The predicate is re-evaluated
    /// after every notification (and on spurious wakeups).
    pub(crate) fn wait(&self, predicate: impl Fn() -> bool) {
        if predicate() {
            return;
        }
        loop {
            let guard = self.lock.lock().unwrap();
            self.waiters.fetch_add(1, Ordering::SeqCst);
            if predicate() {
                self.waiters.fetch_sub(1, Ordering::SeqCst);
                return;
            }
            let guard = self.condvar.wait(guard).unwrap();
            self.waiters.fetch_sub(1, Ordering::SeqCst);
            drop(guard);
            if predicate() {
                return;
            }
        }
    }

    /// Wake all waiters so they re-check their predicates. Cheap (one atomic
    /// load) when nobody waits.
    pub(crate) fn notify(&self) {
        if self.waiters.load(Ordering::SeqCst) > 0 {
            let _guard = self.lock.lock().unwrap();
            self.condvar.notify_all();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicBool;
    use std::sync::Arc;
    use std::time::Duration;

    #[test]
    fn cache_padded_is_line_aligned() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 64);
        let padded = CachePadded::new(7u32);
        assert_eq!(*padded, 7);
    }

    #[test]
    fn event_count_immediate_predicate() {
        let ec = EventCount::default();
        ec.wait(|| true);
    }

    #[test]
    fn event_count_wakes_waiter() {
        let ec = Arc::new(EventCount::default());
        let flag = Arc::new(AtomicBool::new(false));
        let handle = {
            let ec = ec.clone();
            let flag = flag.clone();
            std::thread::spawn(move || {
                ec.wait(|| flag.load(Ordering::SeqCst));
            })
        };
        std::thread::sleep(Duration::from_millis(20));
        flag.store(true, Ordering::SeqCst);
        ec.notify();
        handle.join().unwrap();
    }

    #[test]
    fn event_count_many_waiters() {
        let ec = Arc::new(EventCount::default());
        let flag = Arc::new(AtomicBool::new(false));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let ec = ec.clone();
                let flag = flag.clone();
                std::thread::spawn(move || ec.wait(|| flag.load(Ordering::SeqCst)))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(10));
        flag.store(true, Ordering::SeqCst);
        ec.notify();
        for h in handles {
            h.join().unwrap();
        }
    }

    #[test]
    fn parker_unpark_before_park_is_banked() {
        let parker = Arc::new(Parker::default());
        parker.register();
        parker.prepare_park();
        assert!(parker.unpark_if_sleeping());
        // The unpark above was banked as the park token: this returns at
        // once instead of hanging.
        std::thread::park();
        parker.cancel();
        assert!(!parker.unpark_if_sleeping(), "awake parker must not unpark");
    }
}

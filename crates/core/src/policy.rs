//! Significance-aware execution policies.
//!
//! The runtime must choose, for every task with significance below `1.0`,
//! whether to run its accurate body, its approximate body, or drop it — while
//! honouring (a) the per-group accurate-task ratio `R_g` and (b) the
//! preference for approximating the *least* significant tasks first
//! (Section 3.2). The paper defines two policies plus the baseline:
//!
//! * [`Policy::SignificanceAgnostic`] — the unmodified runtime used as the
//!   overhead baseline (Figure 4): every task runs accurately.
//! * [`Policy::Gtb`] — **Global Task Buffering** (Section 3.3, Listing 4):
//!   the master buffers tasks, sorts each full buffer by significance and
//!   issues the top `R_g · B` accurately.
//!   [`Policy::GtbMaxBuffer`] buffers an entire group until its barrier.
//! * [`Policy::Lqh`] — **Local Queue History** (Section 3.4): workers decide
//!   per task from a local, per-group histogram over the 101 discrete
//!   significance levels: run accurately iff `t_g(s) > (1 − R_g) · t_g(1.0)`.

use std::collections::HashMap;

use crate::group::GroupId;
use crate::significance::{Significance, NUM_LEVELS};

/// Which task-classification policy the runtime applies.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Policy {
    /// Execute every task accurately; no significance bookkeeping at all.
    /// This is the baseline the paper uses to measure runtime overhead.
    #[default]
    SignificanceAgnostic,
    /// Global Task Buffering with the given buffer capacity (tasks).
    Gtb {
        /// Number of tasks the master buffers before analysing and issuing
        /// them. The paper passes this at compile time; here it is a runtime
        /// parameter.
        buffer_size: usize,
    },
    /// Global Task Buffering with an unbounded buffer: all tasks of a group
    /// are buffered until the group's synchronisation barrier, giving the
    /// policy perfect information ("Max Buffer GTB" in Section 4).
    GtbMaxBuffer,
    /// Local Queue History: per-worker, per-group significance histograms.
    Lqh,
}

impl Policy {
    /// Short name used in reports and benchmark IDs (matches the paper's
    /// labels).
    pub fn name(&self) -> &'static str {
        match self {
            Policy::SignificanceAgnostic => "accurate-agnostic",
            Policy::Gtb { .. } => "GTB",
            Policy::GtbMaxBuffer => "GTB(MaxBuffer)",
            Policy::Lqh => "LQH",
        }
    }

    /// The GTB buffer capacity, if this is a buffering policy.
    /// `GtbMaxBuffer` reports `usize::MAX`.
    pub fn buffer_capacity(&self) -> Option<usize> {
        match self {
            Policy::Gtb { buffer_size } => Some(*buffer_size),
            Policy::GtbMaxBuffer => Some(usize::MAX),
            _ => None,
        }
    }

    /// Whether the master-side task buffering path is active.
    pub fn is_buffering(&self) -> bool {
        self.buffer_capacity().is_some()
    }

    /// Whether workers make the accurate/approximate decision at execution
    /// time (LQH).
    pub fn decides_at_execution(&self) -> bool {
        matches!(self, Policy::Lqh)
    }
}

/// Decide the execution modes for one GTB buffer flush.
///
/// `tasks` holds the buffered significances in spawn order; the returned
/// vector holds `true` (accurate) or `false` (approximate) per input
/// position. The `R_g · B` most significant tasks are marked accurate
/// (Listing 4 of the paper), with the paper's special values honoured on
/// top: significance `1.0` is always accurate and `0.0` never is.
///
/// Selection runs as a **histogram scan over the runtime's 101 discrete
/// significance levels** — O(n + levels) instead of the former O(n log n)
/// sort, which matters for Max-Buffer flushes of whole groups. Ties resolve
/// in spawn order at level granularity (the quantisation the paper's runtime
/// itself works at, Section 3.4), so the result is deterministic.
pub(crate) fn gtb_classify(tasks: &[Significance], ratio: f64) -> Vec<bool> {
    assert!((0.0..=1.0).contains(&ratio), "ratio must be in [0, 1]");
    let n = tasks.len();
    if n == 0 {
        return Vec::new();
    }
    // Pass 1: per-level histogram of the ordinary tasks; special values are
    // decided unconditionally and only criticals consume accurate slots.
    let mut hist = [0usize; NUM_LEVELS];
    let mut criticals = 0usize;
    for sig in tasks {
        if sig.is_critical() {
            criticals += 1;
        } else if !sig.is_negligible() {
            hist[sig.level().index()] += 1;
        }
    }
    let accurate_target = (ratio * n as f64).ceil() as usize;
    // Distribute the remaining accurate slots over the levels, most
    // significant first. `quota[level]` is how many tasks of that level run
    // accurately; only the boundary level ends up partially filled.
    let mut quota = [0usize; NUM_LEVELS];
    let mut remaining = accurate_target.saturating_sub(criticals);
    for level in (0..NUM_LEVELS).rev() {
        if remaining == 0 {
            break;
        }
        let take = hist[level].min(remaining);
        quota[level] = take;
        remaining -= take;
    }
    // Pass 2: apply the per-level quotas in spawn order.
    let mut taken = [0usize; NUM_LEVELS];
    tasks
        .iter()
        .map(|sig| {
            if sig.is_critical() {
                true
            } else if sig.is_negligible() {
                false
            } else {
                let level = sig.level().index();
                if taken[level] < quota[level] {
                    taken[level] += 1;
                    true
                } else {
                    false
                }
            }
        })
        .collect()
}

/// Per-worker LQH state: one cumulative histogram per task group.
///
/// The bookkeeping cost is "accessing an array of size equal to the number of
/// distinct significance levels (101 in the runtime), which is negligible
/// compared to the granularity of the task" (Section 3.4).
#[derive(Debug, Default)]
pub(crate) struct LqhState {
    histograms: HashMap<GroupId, [u64; NUM_LEVELS]>,
}

impl LqhState {
    pub(crate) fn new() -> Self {
        LqhState::default()
    }

    /// Decide whether a task with the given significance should run
    /// accurately — "based on the distribution of significance levels of the
    /// tasks executed so far" (Section 3.4) — then account for the task in
    /// the worker-local history.
    ///
    /// Because the decision looks only at *prior* history, a worker's very
    /// first tasks in a group tend to be approximated until the histogram
    /// fills in; this is the source of LQH's slight undershoot of the
    /// requested ratio that the paper observes for MC.
    pub(crate) fn decide(
        &mut self,
        group: GroupId,
        significance: Significance,
        ratio: f64,
    ) -> bool {
        // Special values bypass the history entirely (Section 2).
        if significance.is_critical() {
            self.observe(group, significance);
            return true;
        }
        if significance.is_negligible() {
            self.observe(group, significance);
            return false;
        }
        let decision = if ratio >= 1.0 {
            true
        } else if ratio <= 0.0 {
            false
        } else {
            let hist = self.histograms.entry(group).or_insert([0; NUM_LEVELS]);
            let level = significance.level().index();
            let tasks_at_or_below: u64 = hist[..=level].iter().sum();
            let total: u64 = hist.iter().sum();
            (tasks_at_or_below as f64) > (1.0 - ratio) * total as f64
        };
        self.observe(group, significance);
        decision
    }

    /// Record one observed task without making a decision (used when a GTB
    /// decision is replayed through a worker that also keeps LQH state, and
    /// by `decide`).
    pub(crate) fn observe(&mut self, group: GroupId, significance: Significance) {
        let hist = self.histograms.entry(group).or_insert([0; NUM_LEVELS]);
        hist[significance.level().index()] += 1;
    }

    /// Total tasks observed for a group (`t_g(1.0)` in the paper's notation).
    #[cfg(test)]
    pub(crate) fn total_observed(&self, group: GroupId) -> u64 {
        self.histograms
            .get(&group)
            .map(|h| h.iter().sum())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sig(v: f64) -> Significance {
        Significance::new(v)
    }

    #[test]
    fn policy_metadata() {
        assert_eq!(Policy::Lqh.name(), "LQH");
        assert_eq!(Policy::Gtb { buffer_size: 8 }.buffer_capacity(), Some(8));
        assert_eq!(Policy::GtbMaxBuffer.buffer_capacity(), Some(usize::MAX));
        assert_eq!(Policy::SignificanceAgnostic.buffer_capacity(), None);
        assert!(Policy::GtbMaxBuffer.is_buffering());
        assert!(!Policy::Lqh.is_buffering());
        assert!(Policy::Lqh.decides_at_execution());
        assert_eq!(Policy::default(), Policy::SignificanceAgnostic);
    }

    #[test]
    fn gtb_marks_most_significant_accurate() {
        let sigs = vec![sig(0.1), sig(0.9), sig(0.5), sig(0.7)];
        let decisions = gtb_classify(&sigs, 0.5);
        // Two accurate slots: 0.9 and 0.7.
        assert_eq!(decisions, vec![false, true, false, true]);
    }

    #[test]
    fn gtb_ratio_one_marks_everything_accurate() {
        let sigs = vec![sig(0.1), sig(0.2), sig(0.3)];
        assert_eq!(gtb_classify(&sigs, 1.0), vec![true; 3]);
    }

    #[test]
    fn gtb_ratio_zero_marks_everything_approximate() {
        let sigs = vec![sig(0.1), sig(0.2), sig(0.3)];
        assert_eq!(gtb_classify(&sigs, 0.0), vec![false; 3]);
    }

    #[test]
    fn gtb_special_values_override_ratio() {
        let sigs = vec![sig(1.0), sig(0.0), sig(0.5)];
        // Ratio 0: even then, the critical task stays accurate.
        assert_eq!(gtb_classify(&sigs, 0.0), vec![true, false, false]);
        // Ratio 1: the negligible task still runs approximately.
        assert_eq!(gtb_classify(&sigs, 1.0), vec![true, false, true]);
    }

    #[test]
    fn gtb_rounds_accurate_count_up() {
        // 3 tasks, ratio 0.5 => ceil(1.5) = 2 accurate.
        let sigs = vec![sig(0.2), sig(0.4), sig(0.6)];
        let decisions = gtb_classify(&sigs, 0.5);
        assert_eq!(decisions.iter().filter(|&&a| a).count(), 2);
    }

    #[test]
    fn gtb_ties_resolve_in_spawn_order() {
        let sigs = vec![sig(0.5), sig(0.5), sig(0.5), sig(0.5)];
        let decisions = gtb_classify(&sigs, 0.5);
        assert_eq!(decisions, vec![true, true, false, false]);
    }

    #[test]
    fn gtb_empty_buffer() {
        assert!(gtb_classify(&[], 0.5).is_empty());
    }

    #[test]
    fn gtb_never_inverts_significance() {
        // Property: if a task runs accurately, every strictly more
        // significant non-negligible task also runs accurately.
        let sigs: Vec<Significance> = (1..=20).map(|i| sig((i % 9 + 1) as f64 / 10.0)).collect();
        for ratio in [0.1, 0.35, 0.5, 0.8] {
            let decisions = gtb_classify(&sigs, ratio);
            let min_accurate = sigs
                .iter()
                .zip(&decisions)
                .filter(|(_, &acc)| acc)
                .map(|(s, _)| *s)
                .min();
            if let Some(min_acc) = min_accurate {
                for (s, acc) in sigs.iter().zip(&decisions) {
                    if *s > min_acc {
                        assert!(acc, "task with significance {s} inverted at ratio {ratio}");
                    }
                }
            }
        }
    }

    #[test]
    fn lqh_critical_and_negligible_bypass_history() {
        let mut state = LqhState::new();
        assert!(state.decide(GroupId::GLOBAL, sig(1.0), 0.0));
        assert!(!state.decide(GroupId::GLOBAL, sig(0.0), 1.0));
    }

    #[test]
    fn lqh_ratio_extremes() {
        let mut state = LqhState::new();
        assert!(state.decide(GroupId::GLOBAL, sig(0.5), 1.0));
        assert!(!state.decide(GroupId::GLOBAL, sig(0.5), 0.0));
    }

    #[test]
    fn lqh_uniform_significance_converges_to_fully_accurate() {
        // All tasks share one level: t_g(s) == t_g(1.0), so once any history
        // exists every further task runs accurately (paper: K-means under
        // LQH matches the fully accurate output). Only the history-less very
        // first task may be approximated.
        let mut state = LqhState::new();
        let group = GroupId(3);
        let decisions: Vec<bool> = (0..100)
            .map(|_| state.decide(group, sig(0.5), 0.6))
            .collect();
        assert!(
            !decisions[0],
            "first task has no history to justify accuracy"
        );
        assert!(decisions[1..].iter().all(|&d| d));
        assert_eq!(state.total_observed(group), 100);
    }

    #[test]
    fn lqh_low_significance_tasks_are_approximated() {
        let mut state = LqhState::new();
        let group = GroupId(1);
        // Seed the history with a spread of significances (round-robin 0.1..0.9
        // like the Sobel example), then check the decision boundary.
        let mut accurate = 0;
        let mut total = 0;
        for i in 0..900usize {
            let s = sig(((i % 9) + 1) as f64 / 10.0);
            if state.decide(group, s, 0.35) {
                accurate += 1;
            }
            total += 1;
        }
        let achieved = accurate as f64 / total as f64;
        // The history-based rule should land in the vicinity of the request,
        // approximating predominantly the low-significance tasks.
        assert!(
            achieved > 0.2 && achieved < 0.7,
            "achieved accurate ratio {achieved} too far from requested 0.35"
        );
    }

    #[test]
    fn lqh_higher_significance_is_never_worse_off() {
        // After identical warm-up, a higher-significance task must be at
        // least as likely to run accurately as a lower-significance one.
        let warmup = |state: &mut LqhState, group: GroupId| {
            for i in 0..90 {
                let s = sig(((i % 9) + 1) as f64 / 10.0);
                state.decide(group, s, 0.5);
            }
        };
        let mut a = LqhState::new();
        let mut b = LqhState::new();
        warmup(&mut a, GroupId(1));
        warmup(&mut b, GroupId(1));
        let low = a.decide(GroupId(1), sig(0.2), 0.5);
        let high = b.decide(GroupId(1), sig(0.8), 0.5);
        assert!(high >= low);
    }

    #[test]
    fn lqh_groups_are_independent() {
        let mut state = LqhState::new();
        let g1 = GroupId(1);
        let g2 = GroupId(2);
        for _ in 0..50 {
            state.decide(g1, sig(0.9), 0.5);
        }
        // Group 2 history is empty; its first medium-significance task at a
        // moderate ratio is judged only against itself.
        assert_eq!(state.total_observed(g2), 0);
        state.decide(g2, sig(0.5), 0.5);
        assert_eq!(state.total_observed(g2), 1);
        assert_eq!(state.total_observed(g1), 50);
    }

    #[test]
    #[should_panic(expected = "ratio must be in")]
    fn gtb_invalid_ratio_panics() {
        gtb_classify(&[sig(0.5)], 1.5);
    }
}

//! Lock-free per-worker scheduling queues.
//!
//! The paper's runtime "is organized as a master/slave work-sharing
//! scheduler. ... For every task call encountered, the task is enqueued in a
//! per-worker task queue. Tasks are distributed across workers in round-robin
//! fashion. Workers select the oldest tasks from their queues for execution.
//! When a worker's queue runs empty, the worker may steal tasks from other
//! worker's queues." (Section 3)
//!
//! The seed implementation used a `Mutex<VecDeque>` per worker; the paper's
//! whole pitch, however, is *low per-task overhead* (Figure 4 measures it
//! against OpenMP), and fine-grained tasks hammer these queues. Each worker
//! therefore now owns three lock-free structures:
//!
//! * a [`StealQueue`] — a Chase–Lev-style growable ring buffer. Only the
//!   owning worker pushes (single producer, plain store + release publish,
//!   with a **batched** variant that publishes a whole slice with one
//!   `bottom` store); the owner *and* thieves consume from the opposite end
//!   with one CAS, which preserves the paper's oldest-first execution order.
//!   Thieves prefer [`StealQueue::steal_half_into`]: one CAS claims up to
//!   half the victim's run, the thief keeps the oldest task and appends the
//!   rest to its **own** deque — a flood injected on one worker spreads in
//!   O(log n) steal operations instead of one steal per task.
//! * an [`Inbox`] — a bounded Vyukov-style MPMC ring used by threads that do
//!   not own the queue: the master distributing spawned tasks round-robin,
//!   and workers releasing dependence successors to siblings. Thieves may
//!   also pop a victim's inbox (again in steal-half batches) so
//!   distributed-but-unstarted work is always stealable.
//! * a [`SpillQueue`] — an **unbounded lock-free MPSC list** (Vyukov's
//!   intrusive queue) behind the inbox. The seed grew a `Mutex<VecDeque>`
//!   here, which made inbox overflow the one remaining lock on the external
//!   enqueue path; the MPSC list keeps even worst-case floods mutex-free.
//!   A non-blocking consumer token picks its (single) consumer: normally
//!   the owning worker, refilling its stealable deque in chunks — but a
//!   thief may claim the token too, so spilled work is never stranded
//!   behind a blocked owner.
//!
//! Memory reclamation needs no epoch machinery: steal-queue buffers retired
//! by growth are kept until the queue drops (growth doubles, so retired
//! buffers total less than the live one), inbox slots hand ownership over
//! with a per-slot sequence number, and spill nodes are freed by their
//! single consumer.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicBool, AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::task::Task;

const INITIAL_DEQUE_CAPACITY: usize = 64;
const INBOX_CAPACITY: usize = 1024;
/// Consecutive tasks a batched external push places on one worker before
/// moving to the next (sticky round-robin: locality within the chunk,
/// spread across the batch).
const BATCH_CHUNK: usize = 32;
/// Upper bound on tasks claimed by one steal-half operation.
const STEAL_BATCH_MAX: usize = 32;
/// Spilled tasks the owner moves into its stealable deque per refill.
const SPILL_REFILL: usize = 64;

/// Growable power-of-two ring of task pointers.
struct Buffer {
    slots: Box<[AtomicPtr<Task>]>,
}

impl Buffer {
    fn new(capacity: usize) -> Buffer {
        debug_assert!(capacity.is_power_of_two());
        Buffer {
            slots: (0..capacity)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
        }
    }

    fn capacity(&self) -> u64 {
        self.slots.len() as u64
    }

    fn at(&self, index: u64) -> &AtomicPtr<Task> {
        &self.slots[(index & (self.capacity() - 1)) as usize]
    }
}

/// A single worker's stealable queue (Chase–Lev layout: owner end + steal
/// end over a growable ring).
///
/// Indices increase monotonically and never wrap (a `u64` outlives any run),
/// so there is no ABA hazard on the `top` CAS. A consumed slot value is only
/// *used* when the CAS on `top` succeeds; success proves the owner cannot
/// have recycled that slot, because recycling requires `top` to have moved
/// past it first. The same argument covers multi-slot claims: a CAS from
/// `top` to `top + k` proves no slot in `[top, top + k)` was consumed or
/// recycled between the reads and the claim.
pub(crate) struct StealQueue {
    /// Next index to consume — the **oldest** queued task.
    top: AtomicU64,
    /// Next index to fill. Written only by the owner.
    bottom: AtomicU64,
    buffer: AtomicPtr<Buffer>,
    /// Buffers replaced by growth; freed on drop. Owner-only.
    retired: UnsafeCell<Vec<*mut Buffer>>,
}

// SAFETY: `retired` is touched only by the owning worker (push/grow) and by
// `Drop` (exclusive access); every other field is atomic.
unsafe impl Send for StealQueue {}
unsafe impl Sync for StealQueue {}

impl StealQueue {
    pub(crate) fn new() -> StealQueue {
        StealQueue {
            top: AtomicU64::new(0),
            bottom: AtomicU64::new(0),
            buffer: AtomicPtr::new(Box::into_raw(Box::new(Buffer::new(INITIAL_DEQUE_CAPACITY)))),
            retired: UnsafeCell::new(Vec::new()),
        }
    }

    /// Owner-only: append a task at the bottom (newest) end. Never blocks;
    /// grows the ring when full.
    pub(crate) fn push(&self, task: Arc<Task>) {
        let bottom = self.bottom.load(Ordering::Relaxed);
        let top = self.top.load(Ordering::Acquire);
        let mut buffer = self.buffer.load(Ordering::Relaxed);
        // SAFETY: `buffer` is a live allocation: only the owner (this thread)
        // replaces it, and replaced buffers stay allocated until drop.
        if bottom - top >= unsafe { (*buffer).capacity() } {
            buffer = self.grow(top, bottom);
        }
        let raw = Arc::into_raw(task) as *mut Task;
        unsafe { (*buffer).at(bottom).store(raw, Ordering::Relaxed) };
        // Publish the slot before the new bottom; SeqCst pairs with the
        // sleep-flag protocol in the scheduler (push must be visible to a
        // worker that subsequently observes an empty queue and parks).
        self.bottom.store(bottom + 1, Ordering::SeqCst);
    }

    /// Owner-only: append a whole batch with **one** `bottom` publish. The
    /// per-task cost is a plain pointer store; thieves see the entire batch
    /// at once, so a flood becomes stealable in steal-half chunks instead
    /// of rippling out one publish at a time.
    ///
    /// The iterator's `len()` may be an upper bound (the pop-adapters below
    /// shrink under racing consumers): capacity is sized for the bound, but
    /// only the slots actually written are published.
    pub(crate) fn push_batch(&self, tasks: impl ExactSizeIterator<Item = Arc<Task>>) {
        let n = tasks.len() as u64;
        if n == 0 {
            return;
        }
        let bottom = self.bottom.load(Ordering::Relaxed);
        let top = self.top.load(Ordering::Acquire);
        let mut buffer = self.buffer.load(Ordering::Relaxed);
        // SAFETY: live allocation, owner thread (see `push`).
        while bottom - top + n > unsafe { (*buffer).capacity() } {
            buffer = self.grow(top, bottom);
        }
        let mut written = 0u64;
        for task in tasks {
            let raw = Arc::into_raw(task) as *mut Task;
            unsafe { (*buffer).at(bottom + written).store(raw, Ordering::Relaxed) };
            written += 1;
        }
        self.bottom.store(bottom + written, Ordering::SeqCst);
    }

    /// Consume the **oldest** task. Used by the owner (paper order) and by
    /// thieves; any number of threads may race here, one CAS each.
    pub(crate) fn take(&self) -> Option<Arc<Task>> {
        loop {
            let top = self.top.load(Ordering::SeqCst);
            let bottom = self.bottom.load(Ordering::SeqCst);
            if top >= bottom {
                return None;
            }
            let buffer = self.buffer.load(Ordering::Acquire);
            // SAFETY: live or retired-but-not-freed allocation (see above).
            let raw = unsafe { (*buffer).at(top).load(Ordering::Relaxed) };
            if self
                .top
                .compare_exchange(top, top + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: the CAS on `top` transfers ownership of exactly
                // this slot's reference to us; the slot cannot have been
                // overwritten while `top` still equalled `top` (the owner
                // reuses a slot only after `top` passes it).
                return Some(unsafe { Arc::from_raw(raw) });
            }
        }
    }

    /// Steal-half: claim up to half of this queue's run (capped at
    /// [`STEAL_BATCH_MAX`]) with **one** CAS, return the oldest claimed task
    /// and append the rest — in order — to `dest`, the thief's own deque.
    ///
    /// The thief keeps one task to execute and makes the remainder stealable
    /// from its own queue, so a burst concentrated on one victim fans out
    /// geometrically.
    pub(crate) fn steal_half_into(&self, dest: &StealQueue, max: usize) -> Option<Arc<Task>> {
        debug_assert!(!std::ptr::eq(self, dest), "cannot steal into the victim");
        // Stack scratch for the claimed slots: no allocation on the steal
        // path, and none repeated when the CAS races and retries.
        let mut raws = [std::ptr::null_mut::<Task>(); STEAL_BATCH_MAX];
        loop {
            let top = self.top.load(Ordering::SeqCst);
            let bottom = self.bottom.load(Ordering::SeqCst);
            if top >= bottom {
                return None;
            }
            let available = bottom - top;
            let claim = available
                .div_ceil(2)
                .min(max.min(STEAL_BATCH_MAX) as u64)
                .max(1);
            let buffer = self.buffer.load(Ordering::Acquire);
            // Read every claimed slot *before* the CAS: on success the CAS
            // transfers ownership of exactly these references (see the type
            // docs for why the values cannot be stale), on failure they are
            // simply forgotten.
            for (offset, raw) in raws.iter_mut().enumerate().take(claim as usize) {
                // SAFETY: live or retired-but-not-freed allocation; the
                // values are only *used* if the CAS below succeeds.
                *raw = unsafe { (*buffer).at(top + offset as u64).load(Ordering::Relaxed) };
            }
            if self
                .top
                .compare_exchange(top, top + claim, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: the CAS claimed slots [top, top + claim); each raw
                // pointer is a live reference handed over exactly once.
                let mut tasks = raws[..claim as usize]
                    .iter()
                    .map(|&raw| unsafe { Arc::from_raw(raw) });
                let first = tasks.next();
                dest.push_batch(tasks);
                return first;
            }
        }
    }

    /// Racy emptiness check for the sleep path (precise enough under the
    /// Dekker pairing with the producer's post-push wakeup).
    pub(crate) fn is_empty(&self) -> bool {
        self.top.load(Ordering::SeqCst) >= self.bottom.load(Ordering::SeqCst)
    }

    /// Number of queued tasks (racy; for stats and tests).
    pub(crate) fn len(&self) -> usize {
        let bottom = self.bottom.load(Ordering::SeqCst);
        let top = self.top.load(Ordering::SeqCst);
        bottom.saturating_sub(top) as usize
    }

    /// Owner-only: replace the ring with one of twice the capacity.
    fn grow(&self, top: u64, bottom: u64) -> *mut Buffer {
        let old = self.buffer.load(Ordering::Relaxed);
        // SAFETY: live allocation, owner thread.
        let new = Box::new(Buffer::new((unsafe { (*old).capacity() } * 2) as usize));
        for index in top..bottom {
            let value = unsafe { (*old).at(index).load(Ordering::Relaxed) };
            new.at(index).store(value, Ordering::Relaxed);
        }
        let new = Box::into_raw(new);
        self.buffer.store(new, Ordering::Release);
        // Thieves may still be reading the old buffer: retire, free on drop.
        // SAFETY: `retired` is owner-only.
        unsafe { (*self.retired.get()).push(old) };
        new
    }
}

impl Drop for StealQueue {
    fn drop(&mut self) {
        while self.take().is_some() {}
        // SAFETY: exclusive access in drop; these pointers came from
        // `Box::into_raw` and are freed exactly once.
        unsafe {
            for retired in (*self.retired.get()).drain(..) {
                drop(Box::from_raw(retired));
            }
            drop(Box::from_raw(self.buffer.load(Ordering::Relaxed)));
        }
    }
}

/// One slot of the [`Inbox`]: a sequence number plus the task pointer.
struct InboxSlot {
    sequence: AtomicU64,
    value: UnsafeCell<MaybeUninit<*const Task>>,
}

/// Bounded MPMC ring (Vyukov's algorithm): lock-free pushes from any thread,
/// lock-free pops from any thread, per-slot sequence numbers carrying
/// ownership. A full inbox rejects the push — the caller falls back (owner
/// deque or the spill list), so producers never block the hot path.
pub(crate) struct Inbox {
    slots: Box<[InboxSlot]>,
    mask: u64,
    /// Next position to claim for a push.
    enqueue: AtomicU64,
    /// Next position to claim for a pop.
    dequeue: AtomicU64,
}

// SAFETY: slot values are only accessed by the thread that claimed the slot
// via the corresponding CAS, with the sequence number store/load pair
// ordering the handover.
unsafe impl Send for Inbox {}
unsafe impl Sync for Inbox {}

impl Inbox {
    pub(crate) fn new() -> Inbox {
        Inbox::with_capacity(INBOX_CAPACITY)
    }

    fn with_capacity(capacity: usize) -> Inbox {
        debug_assert!(capacity.is_power_of_two());
        Inbox {
            slots: (0..capacity)
                .map(|index| InboxSlot {
                    sequence: AtomicU64::new(index as u64),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            mask: capacity as u64 - 1,
            enqueue: AtomicU64::new(0),
            dequeue: AtomicU64::new(0),
        }
    }

    /// Push from any thread. Returns the task back if the inbox is full.
    pub(crate) fn push(&self, task: Arc<Task>) -> Result<(), Arc<Task>> {
        loop {
            let position = self.enqueue.load(Ordering::Relaxed);
            let slot = &self.slots[(position & self.mask) as usize];
            let sequence = slot.sequence.load(Ordering::Acquire);
            if sequence == position {
                // SeqCst success ordering: `is_empty` (the pre-park
                // work re-check) reads this cursor, so the advance must be
                // in the SC order with the sleep-flag protocol.
                if self
                    .enqueue
                    .compare_exchange_weak(
                        position,
                        position + 1,
                        Ordering::SeqCst,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    // SAFETY: the CAS gave this thread exclusive write access
                    // to the slot until the sequence store below.
                    unsafe { (*slot.value.get()).write(Arc::into_raw(task)) };
                    slot.sequence.store(position + 1, Ordering::SeqCst);
                    return Ok(());
                }
            } else if sequence < position {
                return Err(task); // full: a lap behind
            }
            // Another producer claimed this slot first; retry at the new tail.
        }
    }

    /// Pop from any thread (the owning worker or a thief).
    pub(crate) fn pop(&self) -> Option<Arc<Task>> {
        loop {
            let position = self.dequeue.load(Ordering::Relaxed);
            let slot = &self.slots[(position & self.mask) as usize];
            let sequence = slot.sequence.load(Ordering::Acquire);
            if sequence == position + 1 {
                if self
                    .dequeue
                    .compare_exchange_weak(
                        position,
                        position + 1,
                        Ordering::SeqCst,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    // SAFETY: the CAS gave this thread exclusive read access;
                    // the producer's sequence store published the write.
                    let raw = unsafe { (*slot.value.get()).assume_init() };
                    slot.sequence
                        .store(position + self.mask + 1, Ordering::Release);
                    // SAFETY: ownership of the reference moves to the caller.
                    return Some(unsafe { Arc::from_raw(raw) });
                }
            } else if sequence <= position {
                return None; // empty (or a producer is mid-publish)
            }
            // Another consumer claimed this slot first; retry at the new head.
        }
    }

    /// Steal-half over the inbox: pop the oldest task for the thief and move
    /// up to half of the remaining entries (capped at `max - 1`) into the
    /// thief's own deque. Each transfer is one MPMC pop — the batch here
    /// amortises the *victim scan*, not the pop CAS.
    pub(crate) fn steal_half_into(&self, dest: &StealQueue, max: usize) -> Option<Arc<Task>> {
        let first = self.pop()?;
        let extra = (self.len() / 2).min(max.saturating_sub(1));
        dest.push_batch(ExtraPops {
            inbox: self,
            remaining: extra,
        });
        Some(first)
    }

    /// Racy emptiness check for the sleep path. May briefly report non-empty
    /// for a push still being published — the worker then simply re-loops.
    pub(crate) fn is_empty(&self) -> bool {
        self.dequeue.load(Ordering::SeqCst) >= self.enqueue.load(Ordering::SeqCst)
    }

    /// Number of queued tasks (racy; for stats and tests).
    pub(crate) fn len(&self) -> usize {
        let enqueue = self.enqueue.load(Ordering::SeqCst);
        let dequeue = self.dequeue.load(Ordering::SeqCst);
        enqueue.saturating_sub(dequeue) as usize
    }
}

/// Adapter streaming up to `remaining` pops of an inbox into
/// [`StealQueue::push_batch`] without an intermediate allocation.
struct ExtraPops<'a> {
    inbox: &'a Inbox,
    remaining: usize,
}

impl Iterator for ExtraPops<'_> {
    type Item = Arc<Task>;

    fn next(&mut self) -> Option<Arc<Task>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        match self.inbox.pop() {
            Some(task) => Some(task),
            None => {
                self.remaining = 0;
                None
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.remaining))
    }
}

impl ExactSizeIterator for ExtraPops<'_> {
    fn len(&self) -> usize {
        // An upper bound: `push_batch` only uses it for capacity sizing and
        // publishes exactly the yielded count.
        self.remaining
    }
}

impl Drop for Inbox {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

/// One node of the [`SpillQueue`] (intrusive singly-linked list).
struct SpillNode {
    /// `None` only in the stub node.
    task: Option<Arc<Task>>,
    next: AtomicPtr<SpillNode>,
}

/// Unbounded lock-free MPSC overflow list (Vyukov's intrusive queue):
/// producers exchange the head pointer and link; a **single consumer at a
/// time** follows `next` links from the tail stub. Replaces the seed's
/// `Mutex<VecDeque>` spill — the last mutex on the external enqueue path —
/// so even a flood that laps the bounded inbox keeps producers lock-free.
///
/// The consumer side is guarded by a non-blocking **consumer token** (one
/// CAS): normally the owning worker holds it, but a *thief* may claim it
/// too when the owner is busy — without this, tasks spilled to a worker
/// that then blocks (e.g. in a nested `taskwait` inside a task body) would
/// be unreachable by the rest of the pool, stalling or deadlocking the
/// runtime. A contended claim simply fails and the caller moves on; nobody
/// ever blocks on the token.
///
/// A push is visible in two steps (head exchange, then the link store); a
/// pop that runs between them observes an empty `next` and returns `None`
/// even though `len` is already positive. Callers treat that as "try again
/// shortly" — the producer is wait-free between the two steps, so the gap
/// closes without blocking anyone.
pub(crate) struct SpillQueue {
    /// Most recently pushed node; producers XCHG here.
    head: AtomicPtr<SpillNode>,
    /// Oldest node (a consumed stub); advanced only by the token holder.
    tail: UnsafeCell<*mut SpillNode>,
    /// Racy occupancy count, maintained SeqCst for the sleep-flag Dekker
    /// pairing (incremented *before* the node is linked, so a worker that
    /// announced sleep either sees the count or the producer sees the flag).
    len: AtomicUsize,
    /// Consumer token: `true` while some thread is popping.
    consuming: AtomicBool,
}

// SAFETY: `tail` is touched only while holding the consumer token (or in
// `Drop`, with exclusive access); `head`/`len` are atomic, and node handover
// follows the XCHG/link protocol documented on the type.
unsafe impl Send for SpillQueue {}
unsafe impl Sync for SpillQueue {}

impl SpillQueue {
    fn new() -> SpillQueue {
        let stub = Box::into_raw(Box::new(SpillNode {
            task: None,
            next: AtomicPtr::new(std::ptr::null_mut()),
        }));
        SpillQueue {
            head: AtomicPtr::new(stub),
            tail: UnsafeCell::new(stub),
            len: AtomicUsize::new(0),
            consuming: AtomicBool::new(false),
        }
    }

    /// Push from any thread. Lock-free (one XCHG + one store), never fails.
    pub(crate) fn push(&self, task: Arc<Task>) {
        let node = Box::into_raw(Box::new(SpillNode {
            task: Some(task),
            next: AtomicPtr::new(std::ptr::null_mut()),
        }));
        self.splice(node, node, 1);
    }

    /// Push a whole batch with **one** XCHG on the contended head pointer:
    /// the nodes are chained privately first, then the chain is spliced in.
    /// This is the overflow half of amortised batch injection — a spilled
    /// chunk costs one contended atomic instead of one per task.
    pub(crate) fn push_batch(&self, tasks: impl Iterator<Item = Arc<Task>>) {
        let mut first: *mut SpillNode = std::ptr::null_mut();
        let mut last: *mut SpillNode = std::ptr::null_mut();
        let mut count = 0usize;
        for task in tasks {
            let node = Box::into_raw(Box::new(SpillNode {
                task: Some(task),
                next: AtomicPtr::new(std::ptr::null_mut()),
            }));
            if first.is_null() {
                first = node;
            } else {
                // SAFETY: `last` is part of the still-private chain.
                // Relaxed: the chain is published as a whole by the release
                // link store in `splice`.
                unsafe { (*last).next.store(node, Ordering::Relaxed) };
            }
            last = node;
            count += 1;
        }
        if count > 0 {
            self.splice(first, last, count);
        }
    }

    /// Link a privately built FIFO chain `first..=last` of `count` nodes
    /// into the queue.
    fn splice(&self, first: *mut SpillNode, last: *mut SpillNode, count: usize) {
        // Count first: the sleep-path re-check must not miss a task whose
        // producer already committed to pushing (see the `len` docs).
        self.len.fetch_add(count, Ordering::SeqCst);
        let prev = self.head.swap(last, Ordering::AcqRel);
        // SAFETY: `prev` is either the stub or a pushed node; nodes are only
        // freed by the consumer *after* following this `next` link.
        unsafe { (*prev).next.store(first, Ordering::Release) };
    }

    /// Claim the consumer token and pop the oldest task. `None` means the
    /// queue is empty, a producer is between its XCHG and its link store,
    /// *or* another thread currently holds the token (see the type docs).
    /// The scheduler drains spills via [`SpillQueue::steal_half_into`];
    /// kept (and tested) as the single-pop form of the same protocol.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn pop(&self) -> Option<Arc<Task>> {
        if self.consuming.swap(true, Ordering::Acquire) {
            return None;
        }
        // SAFETY: the token was claimed above.
        let task = unsafe { self.pop_as_consumer() };
        self.consuming.store(false, Ordering::Release);
        task
    }

    /// Claim the consumer token once and drain up to `max` tasks into
    /// `dest` (the caller's own deque), returning the oldest. Used by the
    /// owner's refill and by thieves rescuing a stalled worker's spill.
    pub(crate) fn steal_half_into(&self, dest: &StealQueue, max: usize) -> Option<Arc<Task>> {
        if self.len() == 0 || self.consuming.swap(true, Ordering::Acquire) {
            return None;
        }
        // SAFETY (both calls): the token was claimed above and is held for
        // the whole drain.
        let first = unsafe { self.pop_as_consumer() };
        if first.is_some() {
            let extra = (self.len() / 2).min(max.saturating_sub(1));
            dest.push_batch(ExtraConsumerPops {
                spill: self,
                remaining: extra,
            });
        }
        self.consuming.store(false, Ordering::Release);
        first
    }

    /// Pop the oldest task.
    ///
    /// # Safety
    ///
    /// The caller must hold the consumer token (or otherwise have exclusive
    /// consumer access, as in `Drop`).
    unsafe fn pop_as_consumer(&self) -> Option<Arc<Task>> {
        let tail = *self.tail.get();
        let next = (*tail).next.load(Ordering::Acquire);
        if next.is_null() {
            return None;
        }
        let task = (*next).task.take();
        *self.tail.get() = next;
        drop(Box::from_raw(tail));
        self.len.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(task.is_some(), "non-stub spill node carries a task");
        task
    }

    /// Racy occupancy count (SeqCst, for the sleep protocol and stats).
    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::SeqCst)
    }
}

/// Adapter streaming up to `remaining` spill pops into
/// [`StealQueue::push_batch`]. Constructed only while the spill's consumer
/// token is held, for the adapter's whole lifetime.
struct ExtraConsumerPops<'a> {
    spill: &'a SpillQueue,
    remaining: usize,
}

impl Iterator for ExtraConsumerPops<'_> {
    type Item = Arc<Task>;

    fn next(&mut self) -> Option<Arc<Task>> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        // SAFETY: the constructor's caller holds the consumer token.
        match unsafe { self.spill.pop_as_consumer() } {
            Some(task) => Some(task),
            None => {
                self.remaining = 0;
                None
            }
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (0, Some(self.remaining))
    }
}

impl ExactSizeIterator for ExtraConsumerPops<'_> {
    fn len(&self) -> usize {
        self.remaining
    }
}

impl Drop for SpillQueue {
    fn drop(&mut self) {
        // Exclusive access: pop everything (no producer can be mid-link and
        // no consumer can hold the token once the queue is being dropped),
        // then free the final stub.
        // SAFETY: exclusive access in drop.
        while unsafe { self.pop_as_consumer() }.is_some() {}
        // SAFETY: `tail` now points at the last remaining node (the current
        // stub), freed exactly once.
        unsafe { drop(Box::from_raw(*self.tail.get())) };
    }
}

/// One worker's queues.
pub(crate) struct WorkerQueue {
    /// Owner-pushed work (dependence successors released by this worker,
    /// spilled work refilled by the owner, halves deposited by steals).
    pub(crate) deque: StealQueue,
    /// Work delivered by other threads (master round-robin distribution,
    /// successors released by sibling workers).
    pub(crate) inbox: Inbox,
    /// Unbounded lock-free overflow behind the inbox. Only filled when a
    /// producer outruns the consumers by a full inbox (e.g. a master
    /// spawning a burst far faster than workers drain). FIFO order is
    /// preserved: once anything spills, later external pushes spill too
    /// until the spill drains, so inbox entries are always older than spill
    /// entries. Normally consumed by the owner, which refills its stealable
    /// deque from it in chunks; thieves may claim the consumer token when
    /// the owner is busy or blocked.
    spill: SpillQueue,
}

impl WorkerQueue {
    fn new() -> WorkerQueue {
        WorkerQueue {
            deque: StealQueue::new(),
            inbox: Inbox::new(),
            spill: SpillQueue::new(),
        }
    }

    /// External (non-owner) push: lock-free inbox first, lock-free spill on
    /// overflow. No path through here takes a mutex.
    fn push_external(&self, task: Arc<Task>) {
        let task = if self.spill.len() == 0 {
            match self.inbox.push(task) {
                Ok(()) => return,
                Err(rejected) => rejected,
            }
        } else {
            task
        };
        self.spill.push(task);
    }

    /// External batched push of one chunk. Tasks enter the inbox while it
    /// has room; the moment it overflows, the rest of the chunk is chained
    /// privately and spliced into the spill with a single XCHG. Returns
    /// whether anything spilled — the caller then wakes *this* worker
    /// directly: thieves can rescue a spill through its consumer token, but
    /// the owner drains it with the best locality and without waiting for
    /// an idle thief to scan past it.
    fn push_external_batch(&self, chunk: impl Iterator<Item = Arc<Task>>) -> bool {
        let mut chunk = chunk;
        if self.spill.len() == 0 {
            loop {
                match chunk.next() {
                    None => return false,
                    Some(task) => {
                        if let Err(rejected) = self.inbox.push(task) {
                            self.spill
                                .push_batch(std::iter::once(rejected).chain(chunk));
                            return true;
                        }
                    }
                }
            }
        }
        self.spill.push_batch(chunk);
        true
    }

    /// Owner refill: move a chunk of spilled tasks into the stealable deque
    /// (so thieves can see them) and return the oldest. Called only when
    /// the deque and inbox are empty, which keeps FIFO order intact.
    fn refill_from_spill(&self) -> Option<Arc<Task>> {
        self.spill.steal_half_into(&self.deque, SPILL_REFILL)
    }

    /// Owner pop: oldest own-deque task first, then the inbox, then a
    /// spill refill. Returns the task plus whether new stealable work was
    /// published (so the caller can wake a stealer).
    fn pop(&self) -> (Option<Arc<Task>>, bool) {
        if let Some(task) = self.deque.take() {
            return (Some(task), false);
        }
        if let Some(task) = self.inbox.pop() {
            return (Some(task), false);
        }
        match self.refill_from_spill() {
            Some(task) => {
                let stealable = !self.deque.is_empty();
                (Some(task), stealable)
            }
            None => (None, false),
        }
    }

    fn has_work(&self) -> bool {
        !self.deque.is_empty() || !self.inbox.is_empty() || self.spill.len() > 0
    }
}

/// The set of all worker queues plus the round-robin cursor used to
/// distribute tasks, mirroring the paper's master/slave layout.
pub(crate) struct QueueSet {
    workers: Box<[WorkerQueue]>,
    next: AtomicUsize,
}

/// Result of a local pop: the task (if any) plus whether the pop published
/// new stealable work (a spill refill) that may warrant waking a stealer.
pub(crate) struct LocalPop {
    pub(crate) task: Option<Arc<Task>>,
    pub(crate) refilled: bool,
}

/// Result of a batched enqueue: the consecutive worker range that received
/// chunks, plus the workers whose chunks overflowed into their spill (each
/// of those gets a directed wake — the owner is the preferred consumer).
pub(crate) struct BatchPush {
    pub(crate) first: usize,
    pub(crate) touched: usize,
    pub(crate) spilled: Vec<usize>,
}

impl QueueSet {
    pub(crate) fn new(workers: usize) -> QueueSet {
        assert!(workers > 0, "at least one worker queue is required");
        QueueSet {
            workers: (0..workers).map(|_| WorkerQueue::new()).collect(),
            next: AtomicUsize::new(0),
        }
    }

    /// Number of worker queues.
    pub(crate) fn len(&self) -> usize {
        self.workers.len()
    }

    /// Enqueue a task and return the index of the worker that should be
    /// woken.
    ///
    /// `local` identifies the calling thread when it is one of this
    /// runtime's workers: that worker pushes straight onto its own stealable
    /// deque — the zero-contention single-producer fast path. Every other
    /// thread (the master above all) distributes round-robin across worker
    /// inboxes, the paper's distribution scheme, overflowing into the
    /// target's unbounded lock-free spill when the inbox is full so
    /// producers never stall.
    pub(crate) fn push(&self, task: Arc<Task>, local: Option<usize>) -> usize {
        if let Some(worker) = local {
            debug_assert!(worker < self.workers.len());
            self.workers[worker].deque.push(task);
            return worker;
        }
        let target = self.next.fetch_add(1, Ordering::Relaxed) % self.workers.len();
        self.workers[target].push_external(task);
        target
    }

    /// Batched enqueue: place `tasks` in sticky round-robin chunks of
    /// [`BATCH_CHUNK`] consecutive tasks per worker (cache locality inside
    /// the chunk, spread across the batch). The returned [`BatchPush`]
    /// tells the caller which consecutive workers received chunks — for one
    /// coalesced wake instead of one per task — and which workers took
    /// overflow into their spill (each gets a directed wake: its owner is
    /// the cheapest, lowest-latency consumer, though thieves can rescue a
    /// spill too).
    ///
    /// A local worker keeps the entire batch on its own deque (a single
    /// lock-free publish); steal-half spreads it from there.
    pub(crate) fn push_batch(&self, tasks: Vec<Arc<Task>>, local: Option<usize>) -> BatchPush {
        if tasks.is_empty() {
            return BatchPush {
                first: 0,
                touched: 0,
                spilled: Vec::new(),
            };
        }
        if let Some(worker) = local {
            debug_assert!(worker < self.workers.len());
            self.workers[worker].deque.push_batch(tasks.into_iter());
            return BatchPush {
                first: worker,
                touched: 1,
                spilled: Vec::new(),
            };
        }
        let count = self.workers.len();
        let chunks = tasks.len().div_ceil(BATCH_CHUNK);
        let first = self.next.fetch_add(chunks, Ordering::Relaxed) % count;
        let mut spilled = Vec::new();
        let mut tasks = tasks.into_iter();
        for chunk in 0..chunks {
            let target = (first + chunk) % count;
            if self.workers[target].push_external_batch(tasks.by_ref().take(BATCH_CHUNK))
                && spilled.last() != Some(&target)
            {
                spilled.push(target);
            }
        }
        BatchPush {
            first,
            touched: chunks.min(count),
            spilled,
        }
    }

    /// Worker-local pop: oldest own-deque task first, then the inbox, then
    /// the spill (refilled into the deque in stealable chunks).
    pub(crate) fn pop_local(&self, worker: usize) -> LocalPop {
        let (task, refilled) = self.workers[worker].pop();
        LocalPop { task, refilled }
    }

    /// Attempt a steal-half on behalf of `thief`: scan the other workers'
    /// deques, inboxes and spills, claim up to half of the first non-empty
    /// victim's run, keep the oldest task and deposit the rest on the
    /// thief's own deque (making it stealable in turn). Spills are fair
    /// game — the consumer token serialises the thief against the owner —
    /// so work spilled to a worker that then blocked (e.g. in a nested
    /// barrier inside a task body) is rescued by the rest of the pool.
    pub(crate) fn steal(&self, thief: usize) -> Option<Arc<Task>> {
        let count = self.workers.len();
        let dest = &self.workers[thief].deque;
        for offset in 1..count {
            let victim = &self.workers[(thief + offset) % count];
            if let Some(task) = victim.deque.steal_half_into(dest, STEAL_BATCH_MAX) {
                return Some(task);
            }
            if let Some(task) = victim.inbox.steal_half_into(dest, STEAL_BATCH_MAX) {
                return Some(task);
            }
            if let Some(task) = victim.spill.steal_half_into(dest, STEAL_BATCH_MAX) {
                return Some(task);
            }
        }
        None
    }

    /// Whether `worker`'s own stealable deque holds work — after a
    /// successful steal this means the steal-half deposited surplus tasks,
    /// and the caller should invite another sleeper (wake propagation).
    pub(crate) fn has_local_backlog(&self, worker: usize) -> bool {
        !self.workers[worker].deque.is_empty()
    }

    /// Whether any queue holds work (racy; used by the sleep protocol under
    /// the Dekker pairing described in [`crate::sync::Parker`], and by
    /// shutdown). Every structure counted here — deque, inbox, spill — is
    /// reachable by any awake worker.
    pub(crate) fn any_work(&self) -> bool {
        self.workers.iter().any(WorkerQueue::has_work)
    }

    /// Total queued (issued but not yet started) tasks, racy. Drives the
    /// brownout overload controller's queue-depth watermark (amortised:
    /// sampled once per recompute tick, not per task) and tests.
    pub(crate) fn total_queued(&self) -> usize {
        self.workers
            .iter()
            .map(|w| w.deque.len() + w.inbox.len() + w.spill.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::{GroupId, GroupState};
    use crate::significance::Significance;
    use crate::task::TaskId;
    use std::sync::atomic::AtomicUsize;

    fn group() -> Arc<GroupState> {
        Arc::new(GroupState::new(
            GroupId::GLOBAL,
            Arc::from("<test>"),
            1.0,
            1,
        ))
    }

    fn task(id: u64) -> Arc<Task> {
        Arc::new(Task::new(
            TaskId(id),
            group(),
            Significance::CRITICAL,
            Box::new(|| {}),
            None,
            Vec::new(),
            false,
        ))
    }

    fn pop_owner(queue: &WorkerQueue) -> Option<Arc<Task>> {
        queue.pop().0
    }

    #[test]
    fn steal_queue_is_fifo() {
        let q = StealQueue::new();
        q.push(task(1));
        q.push(task(2));
        q.push(task(3));
        assert_eq!(q.len(), 3);
        assert_eq!(q.take().unwrap().id, TaskId(1));
        assert_eq!(q.take().unwrap().id, TaskId(2));
        assert_eq!(q.take().unwrap().id, TaskId(3));
        assert!(q.take().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn steal_queue_grows_past_initial_capacity() {
        let q = StealQueue::new();
        let n = (INITIAL_DEQUE_CAPACITY * 4 + 3) as u64;
        for i in 0..n {
            q.push(task(i));
        }
        assert_eq!(q.len(), n as usize);
        for i in 0..n {
            assert_eq!(q.take().unwrap().id, TaskId(i));
        }
        assert!(q.take().is_none());
    }

    #[test]
    fn steal_queue_push_batch_is_fifo_and_grows() {
        let q = StealQueue::new();
        let n = (INITIAL_DEQUE_CAPACITY * 3 + 7) as u64;
        q.push(task(0));
        q.push_batch((1..n as usize).map(|i| task(i as u64)));
        assert_eq!(q.len(), n as usize);
        for i in 0..n {
            assert_eq!(q.take().unwrap().id, TaskId(i), "order broken at {i}");
        }
        assert!(q.take().is_none());
        // Empty batches are a no-op.
        q.push_batch(std::iter::empty());
        assert!(q.is_empty());
    }

    #[test]
    fn steal_half_takes_half_and_preserves_order() {
        let victim = StealQueue::new();
        let thief = StealQueue::new();
        for i in 0..10 {
            victim.push(task(i));
        }
        // 10 available: the thief claims 5, keeps the oldest, deposits 4.
        let first = victim.steal_half_into(&thief, STEAL_BATCH_MAX).unwrap();
        assert_eq!(first.id, TaskId(0));
        assert_eq!(thief.len(), 4);
        assert_eq!(victim.len(), 5);
        for i in 1..5 {
            assert_eq!(thief.take().unwrap().id, TaskId(i));
        }
        for i in 5..10 {
            assert_eq!(victim.take().unwrap().id, TaskId(i));
        }
    }

    #[test]
    fn steal_half_respects_cap_and_single_element() {
        let victim = StealQueue::new();
        let thief = StealQueue::new();
        victim.push(task(7));
        // One available: claim exactly one, deposit nothing.
        assert_eq!(
            victim.steal_half_into(&thief, STEAL_BATCH_MAX).unwrap().id,
            TaskId(7)
        );
        assert!(thief.is_empty());
        assert!(victim.steal_half_into(&thief, STEAL_BATCH_MAX).is_none());
        // A large run is capped at `max` per operation.
        for i in 0..200 {
            victim.push(task(i));
        }
        let _ = victim.steal_half_into(&thief, 8).unwrap();
        assert_eq!(thief.len(), 7);
        assert_eq!(victim.len(), 192);
    }

    #[test]
    fn steal_queue_drop_releases_queued_tasks() {
        let q = StealQueue::new();
        let probe = task(9);
        q.push(probe.clone());
        drop(q);
        assert_eq!(Arc::strong_count(&probe), 1, "queue must release its ref");
    }

    #[test]
    fn concurrent_consumers_take_each_task_once() {
        let q = Arc::new(StealQueue::new());
        let n = 10_000u64;
        for i in 0..n {
            q.push(task(i));
        }
        let taken = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                let taken = taken.clone();
                std::thread::spawn(move || {
                    while q.take().is_some() {
                        taken.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(taken.load(Ordering::Relaxed), n as usize);
    }

    #[test]
    fn concurrent_batch_thieves_take_each_task_once() {
        // Several thieves racing steal_half_into (plus the owner taking)
        // must neither lose nor duplicate a task.
        for _ in 0..10 {
            let victim = Arc::new(StealQueue::new());
            let n = 5_000u64;
            for i in 0..n {
                victim.push(task(i));
            }
            let taken = Arc::new(AtomicUsize::new(0));
            let thieves: Vec<_> = (0..3)
                .map(|_| {
                    let victim = victim.clone();
                    let taken = taken.clone();
                    std::thread::spawn(move || {
                        let own = StealQueue::new();
                        while victim.steal_half_into(&own, STEAL_BATCH_MAX).is_some() {
                            taken.fetch_add(1, Ordering::Relaxed);
                            while own.take().is_some() {
                                taken.fetch_add(1, Ordering::Relaxed);
                            }
                        }
                    })
                })
                .collect();
            let owner = {
                let victim = victim.clone();
                let taken = taken.clone();
                std::thread::spawn(move || {
                    while victim.take().is_some() {
                        taken.fetch_add(1, Ordering::Relaxed);
                    }
                })
            };
            for h in thieves {
                h.join().unwrap();
            }
            owner.join().unwrap();
            assert_eq!(taken.load(Ordering::Relaxed), n as usize);
        }
    }

    #[test]
    fn inbox_round_trips_in_order() {
        let inbox = Inbox::with_capacity(8);
        assert!(inbox.is_empty());
        for i in 0..5 {
            inbox.push(task(i)).unwrap();
        }
        assert_eq!(inbox.len(), 5);
        for i in 0..5 {
            assert_eq!(inbox.pop().unwrap().id, TaskId(i));
        }
        assert!(inbox.pop().is_none());
    }

    #[test]
    fn inbox_rejects_when_full_then_recovers() {
        let inbox = Inbox::with_capacity(4);
        for i in 0..4 {
            inbox.push(task(i)).unwrap();
        }
        let rejected = inbox.push(task(99)).unwrap_err();
        assert_eq!(rejected.id, TaskId(99));
        assert_eq!(inbox.pop().unwrap().id, TaskId(0));
        inbox.push(rejected).unwrap();
        assert_eq!(inbox.len(), 4);
    }

    #[test]
    fn inbox_steal_half_moves_batch_to_dest() {
        let inbox = Inbox::with_capacity(16);
        for i in 0..9 {
            inbox.push(task(i)).unwrap();
        }
        let dest = StealQueue::new();
        let first = inbox.steal_half_into(&dest, STEAL_BATCH_MAX).unwrap();
        assert_eq!(first.id, TaskId(0));
        // 8 remained after the first pop; half (4) moved to the thief.
        assert_eq!(dest.len(), 4);
        assert_eq!(inbox.len(), 4);
        for i in 1..5 {
            assert_eq!(dest.take().unwrap().id, TaskId(i));
        }
        for i in 5..9 {
            assert_eq!(inbox.pop().unwrap().id, TaskId(i));
        }
    }

    #[test]
    fn inbox_concurrent_producers_and_consumers() {
        let inbox = Arc::new(Inbox::with_capacity(64));
        let produced = 4 * 2_500usize;
        let consumed = Arc::new(AtomicUsize::new(0));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let inbox = inbox.clone();
                std::thread::spawn(move || {
                    for i in 0..2_500u64 {
                        let mut item = task(p * 10_000 + i);
                        loop {
                            match inbox.push(item) {
                                Ok(()) => break,
                                Err(back) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let inbox = inbox.clone();
                let consumed = consumed.clone();
                std::thread::spawn(move || loop {
                    if inbox.pop().is_some() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                    } else if consumed.load(Ordering::Relaxed) >= 10_000 {
                        break;
                    } else {
                        std::thread::yield_now();
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        for h in consumers {
            h.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::Relaxed), produced);
        assert!(inbox.is_empty());
    }

    #[test]
    fn spill_queue_is_fifo_and_counts() {
        let spill = SpillQueue::new();
        assert_eq!(spill.len(), 0);
        assert!(spill.pop().is_none());
        for i in 0..5 {
            spill.push(task(i));
        }
        assert_eq!(spill.len(), 5);
        for i in 0..5 {
            assert_eq!(spill.pop().unwrap().id, TaskId(i));
        }
        assert!(spill.pop().is_none());
        assert_eq!(spill.len(), 0);
    }

    #[test]
    fn spill_queue_concurrent_producers_single_consumer() {
        let spill = Arc::new(SpillQueue::new());
        let produced = 4 * 5_000usize;
        let producers: Vec<_> = (0..4u64)
            .map(|p| {
                let spill = spill.clone();
                std::thread::spawn(move || {
                    for i in 0..5_000u64 {
                        spill.push(task(p * 100_000 + i));
                    }
                })
            })
            .collect();
        let mut consumed = 0usize;
        while consumed < produced {
            if spill.pop().is_some() {
                consumed += 1;
            } else {
                std::thread::yield_now();
            }
        }
        for h in producers {
            h.join().unwrap();
        }
        assert!(spill.pop().is_none());
        assert_eq!(spill.len(), 0);
    }

    #[test]
    fn spill_queue_drop_releases_tasks() {
        let spill = SpillQueue::new();
        let probe = task(3);
        spill.push(probe.clone());
        drop(spill);
        assert_eq!(Arc::strong_count(&probe), 1, "spill must release its ref");
    }

    #[test]
    fn queue_set_external_push_is_round_robin() {
        let set = QueueSet::new(4);
        for i in 0..8 {
            set.push(task(i), None);
        }
        for w in 0..4 {
            assert_eq!(
                set.workers[w].inbox.len(),
                2,
                "worker {w} should hold 2 tasks"
            );
        }
        assert_eq!(set.total_queued(), 8);
    }

    #[test]
    fn queue_set_push_batch_chunks_round_robin() {
        let set = QueueSet::new(4);
        let n = BATCH_CHUNK * 3 + 5; // four chunks
        let push = set.push_batch((0..n as u64).map(task).collect(), None);
        assert_eq!(push.first, 0);
        assert_eq!(push.touched, 4);
        assert!(push.spilled.is_empty());
        assert_eq!(set.workers[0].inbox.len(), BATCH_CHUNK);
        assert_eq!(set.workers[1].inbox.len(), BATCH_CHUNK);
        assert_eq!(set.workers[2].inbox.len(), BATCH_CHUNK);
        assert_eq!(set.workers[3].inbox.len(), 5);
        // Chunks are sticky: consecutive tasks land on the same worker.
        assert_eq!(set.workers[0].inbox.pop().unwrap().id, TaskId(0));
        assert_eq!(set.workers[0].inbox.pop().unwrap().id, TaskId(1));
        assert_eq!(
            set.workers[1].inbox.pop().unwrap().id,
            TaskId(BATCH_CHUNK as u64)
        );
    }

    #[test]
    fn queue_set_push_batch_local_stays_on_own_deque() {
        let set = QueueSet::new(3);
        let push = set.push_batch((0..10).map(task).collect(), Some(2));
        assert_eq!((push.first, push.touched), (2, 1));
        assert_eq!(set.workers[2].deque.len(), 10);
        let empty = set.push_batch(Vec::new(), None);
        assert_eq!((empty.first, empty.touched), (0, 0));
    }

    #[test]
    fn queue_set_push_batch_reports_spilled_targets() {
        let set = QueueSet::new(2);
        // Pre-fill worker 1's inbox so its chunk overflows mid-batch.
        for i in 0..INBOX_CAPACITY as u64 {
            set.workers[1].inbox.push(task(10_000 + i)).unwrap();
        }
        let n = BATCH_CHUNK * 2;
        let push = set.push_batch((0..n as u64).map(task).collect(), None);
        assert_eq!(push.touched, 2);
        assert_eq!(push.spilled, vec![1], "worker 1 must be flagged for a wake");
        assert_eq!(set.workers[1].spill.len(), BATCH_CHUNK);
        assert_eq!(set.workers[0].inbox.len(), BATCH_CHUNK);
    }

    #[test]
    fn spill_batch_splices_in_fifo_order() {
        let spill = SpillQueue::new();
        spill.push(task(0));
        spill.push_batch((1..40).map(task));
        spill.push(task(40));
        spill.push_batch(std::iter::empty());
        assert_eq!(spill.len(), 41);
        for i in 0..41 {
            assert_eq!(spill.pop().unwrap().id, TaskId(i), "order broken at {i}");
        }
        assert!(spill.pop().is_none());
    }

    #[test]
    fn worker_queue_spills_past_a_full_inbox_and_preserves_order() {
        let queue = WorkerQueue::new();
        let n = INBOX_CAPACITY as u64 + 100;
        for i in 0..n {
            queue.push_external(task(i));
        }
        assert_eq!(queue.spill.len(), 100);
        for i in 0..n {
            assert_eq!(
                pop_owner(&queue).unwrap().id,
                TaskId(i),
                "order broken at {i}"
            );
        }
        assert!(!queue.has_work());
    }

    #[test]
    fn spill_refill_publishes_stealable_work() {
        let queue = WorkerQueue::new();
        let n = INBOX_CAPACITY as u64 + 2 * SPILL_REFILL as u64;
        for i in 0..n {
            queue.push_external(task(i));
        }
        // Drain the inbox; the next pop must refill from the spill and
        // report that it published stealable work.
        for i in 0..INBOX_CAPACITY as u64 {
            let (t, refilled) = queue.pop();
            assert_eq!(t.unwrap().id, TaskId(i));
            assert!(!refilled);
        }
        let (t, refilled) = queue.pop();
        assert_eq!(t.unwrap().id, TaskId(INBOX_CAPACITY as u64));
        assert!(refilled, "spill refill must report new stealable work");
        // Half of the remaining spill (capped at SPILL_REFILL - 1) moved
        // onto the stealable deque alongside the returned task.
        assert_eq!(queue.deque.len(), SPILL_REFILL - 1);
    }

    #[test]
    fn queue_set_local_push_goes_to_own_deque() {
        let set = QueueSet::new(2);
        let woken = set.push(task(1), Some(1));
        assert_eq!(woken, 1);
        assert_eq!(set.workers[1].deque.len(), 1);
        assert_eq!(set.workers[1].inbox.len(), 0);
        assert_eq!(set.pop_local(1).task.unwrap().id, TaskId(1));
    }

    #[test]
    fn steal_scans_other_queues_and_inboxes() {
        let set = QueueSet::new(3);
        set.push(task(7), Some(2));
        let stolen = set.steal(0).expect("worker 0 should steal from worker 2");
        assert_eq!(stolen.id, TaskId(7));
        assert!(set.steal(0).is_none());
        // Inbox work is stealable too.
        set.workers[1].inbox.push(task(8)).unwrap();
        assert_eq!(set.steal(0).unwrap().id, TaskId(8));
    }

    #[test]
    fn steal_deposits_extra_tasks_on_thief_deque() {
        let set = QueueSet::new(2);
        for i in 0..10 {
            set.push(task(i), Some(1));
        }
        let first = set.steal(0).unwrap();
        assert_eq!(first.id, TaskId(0));
        assert_eq!(set.workers[0].deque.len(), 4, "thief keeps half minus one");
        assert_eq!(set.workers[1].deque.len(), 5);
    }

    #[test]
    fn steal_never_takes_from_own_queue() {
        let set = QueueSet::new(2);
        set.push(task(9), Some(1));
        assert!(
            set.steal(1).is_none(),
            "a worker must not steal from itself"
        );
        assert_eq!(set.workers[1].deque.len(), 1);
    }

    #[test]
    fn thief_rescues_a_foreign_spill() {
        // Work spilled to worker 0 must be reachable by worker 1 even if
        // worker 0 never pops again (e.g. blocked in a nested barrier).
        let set = QueueSet::new(2);
        for i in 0..INBOX_CAPACITY as u64 {
            set.workers[0].inbox.push(task(i)).unwrap();
        }
        for i in 0..10u64 {
            set.workers[0].push_external(task(10_000 + i));
        }
        assert_eq!(set.workers[0].spill.len(), 10);
        assert!(set.any_work());
        // Drain the inbox the easy way, then steal: the spill is fair game.
        while set.workers[0].inbox.pop().is_some() {}
        let stolen = set.steal(1).expect("thief must reach the spill");
        assert_eq!(stolen.id, TaskId(10_000));
        // Half of the remaining 9 came along onto the thief's deque.
        assert_eq!(set.workers[1].deque.len(), 4);
        assert_eq!(set.workers[0].spill.len(), 5);
    }

    #[test]
    fn spill_consumer_token_serialises_consumers() {
        let spill = SpillQueue::new();
        for i in 0..8 {
            spill.push(task(i));
        }
        // While the token is held, other consumers get None instead of
        // racing the tail pointer.
        assert!(!spill.consuming.swap(true, Ordering::Acquire));
        assert!(spill.pop().is_none(), "token holder excludes other poppers");
        let dest = StealQueue::new();
        assert!(spill.steal_half_into(&dest, 8).is_none());
        spill.consuming.store(false, Ordering::Release);
        assert_eq!(spill.pop().unwrap().id, TaskId(0));
        // 6 remain after taking the first: half (3) ride along.
        assert_eq!(spill.steal_half_into(&dest, 8).unwrap().id, TaskId(1));
        assert_eq!(dest.len(), 3);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        QueueSet::new(0);
    }

    #[test]
    fn single_worker_set() {
        let set = QueueSet::new(1);
        set.push(task(1), None);
        set.push(task(2), Some(0));
        assert!(set.any_work());
        assert_eq!(set.total_queued(), 2);
        assert!(set.steal(0).is_none());
        assert!(set.pop_local(0).task.is_some());
        assert!(set.pop_local(0).task.is_some());
        assert!(!set.any_work());
    }
}

//! Lock-free per-worker scheduling queues.
//!
//! The paper's runtime "is organized as a master/slave work-sharing
//! scheduler. ... For every task call encountered, the task is enqueued in a
//! per-worker task queue. Tasks are distributed across workers in round-robin
//! fashion. Workers select the oldest tasks from their queues for execution.
//! When a worker's queue runs empty, the worker may steal tasks from other
//! worker's queues." (Section 3)
//!
//! The seed implementation used a `Mutex<VecDeque>` per worker; the paper's
//! whole pitch, however, is *low per-task overhead* (Figure 4 measures it
//! against OpenMP), and fine-grained tasks hammer these queues. Each worker
//! therefore now owns two lock-free structures:
//!
//! * a [`StealQueue`] — a Chase–Lev-style growable ring buffer. Only the
//!   owning worker pushes (single producer, plain store + release publish);
//!   the owner *and* thieves consume from the opposite end with one CAS,
//!   which preserves the paper's oldest-first execution order. The classic
//!   Chase–Lev LIFO owner pop is also provided (and tested) but the
//!   scheduler consumes FIFO as the paper prescribes.
//! * an [`Inbox`] — a bounded Vyukov-style MPMC ring used by threads that do
//!   not own the queue: the master distributing spawned tasks round-robin,
//!   and workers releasing dependence successors to siblings. Thieves may
//!   also pop a victim's inbox so distributed-but-unstarted work is always
//!   stealable.
//!
//! Memory reclamation needs no epoch machinery: steal-queue buffers retired
//! by growth are kept until the queue drops (growth doubles, so retired
//! buffers total less than the live one), and inbox slots hand ownership
//! over with a per-slot sequence number.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicPtr, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use crate::task::Task;

const INITIAL_DEQUE_CAPACITY: usize = 64;
const INBOX_CAPACITY: usize = 1024;

/// Growable power-of-two ring of task pointers.
struct Buffer {
    slots: Box<[AtomicPtr<Task>]>,
}

impl Buffer {
    fn new(capacity: usize) -> Buffer {
        debug_assert!(capacity.is_power_of_two());
        Buffer {
            slots: (0..capacity)
                .map(|_| AtomicPtr::new(std::ptr::null_mut()))
                .collect(),
        }
    }

    fn capacity(&self) -> u64 {
        self.slots.len() as u64
    }

    fn at(&self, index: u64) -> &AtomicPtr<Task> {
        &self.slots[(index & (self.capacity() - 1)) as usize]
    }
}

/// A single worker's stealable queue (Chase–Lev layout: owner end + steal
/// end over a growable ring).
///
/// Indices increase monotonically and never wrap (a `u64` outlives any run),
/// so there is no ABA hazard on the `top` CAS. A consumed slot value is only
/// *used* when the CAS on `top` succeeds; success proves the owner cannot
/// have recycled that slot, because recycling requires `top` to have moved
/// past it first.
pub(crate) struct StealQueue {
    /// Next index to consume — the **oldest** queued task.
    top: AtomicU64,
    /// Next index to fill. Written only by the owner.
    bottom: AtomicU64,
    buffer: AtomicPtr<Buffer>,
    /// Buffers replaced by growth; freed on drop. Owner-only.
    retired: UnsafeCell<Vec<*mut Buffer>>,
}

// SAFETY: `retired` is touched only by the owning worker (push/grow) and by
// `Drop` (exclusive access); every other field is atomic.
unsafe impl Send for StealQueue {}
unsafe impl Sync for StealQueue {}

impl StealQueue {
    pub(crate) fn new() -> StealQueue {
        StealQueue {
            top: AtomicU64::new(0),
            bottom: AtomicU64::new(0),
            buffer: AtomicPtr::new(Box::into_raw(Box::new(Buffer::new(INITIAL_DEQUE_CAPACITY)))),
            retired: UnsafeCell::new(Vec::new()),
        }
    }

    /// Owner-only: append a task at the bottom (newest) end. Never blocks;
    /// grows the ring when full.
    pub(crate) fn push(&self, task: Arc<Task>) {
        let bottom = self.bottom.load(Ordering::Relaxed);
        let top = self.top.load(Ordering::Acquire);
        let mut buffer = self.buffer.load(Ordering::Relaxed);
        // SAFETY: `buffer` is a live allocation: only the owner (this thread)
        // replaces it, and replaced buffers stay allocated until drop.
        if bottom - top >= unsafe { (*buffer).capacity() } {
            buffer = self.grow(top, bottom);
        }
        let raw = Arc::into_raw(task) as *mut Task;
        unsafe { (*buffer).at(bottom).store(raw, Ordering::Relaxed) };
        // Publish the slot before the new bottom; SeqCst pairs with the
        // sleep-flag protocol in the scheduler (push must be visible to a
        // worker that subsequently observes an empty queue and parks).
        self.bottom.store(bottom + 1, Ordering::SeqCst);
    }

    /// Consume the **oldest** task. Used by the owner (paper order) and by
    /// thieves; any number of threads may race here, one CAS each.
    pub(crate) fn take(&self) -> Option<Arc<Task>> {
        loop {
            let top = self.top.load(Ordering::SeqCst);
            let bottom = self.bottom.load(Ordering::SeqCst);
            if top >= bottom {
                return None;
            }
            let buffer = self.buffer.load(Ordering::Acquire);
            // SAFETY: live or retired-but-not-freed allocation (see above).
            let raw = unsafe { (*buffer).at(top).load(Ordering::Relaxed) };
            if self
                .top
                .compare_exchange(top, top + 1, Ordering::SeqCst, Ordering::Relaxed)
                .is_ok()
            {
                // SAFETY: the CAS on `top` transfers ownership of exactly
                // this slot's reference to us; the slot cannot have been
                // overwritten while `top` still equalled `top` (the owner
                // reuses a slot only after `top` passes it).
                return Some(unsafe { Arc::from_raw(raw) });
            }
        }
    }

    /// Owner-only: consume the **newest** task (classic Chase–Lev LIFO pop).
    /// Not used by the scheduler — the paper wants oldest-first — but kept
    /// correct and tested for future policies (e.g. locality-first modes).
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn pop_newest(&self) -> Option<Arc<Task>> {
        let bottom = self.bottom.load(Ordering::Relaxed);
        let top = self.top.load(Ordering::SeqCst);
        if top >= bottom {
            return None;
        }
        let target = bottom - 1;
        let buffer = self.buffer.load(Ordering::Relaxed);
        // SAFETY: live allocation; slot `target` was written by this thread.
        let raw = unsafe { (*buffer).at(target).load(Ordering::Relaxed) };
        // Claim the slot against concurrent thieves by advancing `top` past
        // it is impossible (thieves take from top), so instead reserve via
        // bottom: publish the shrink, then re-check for a race on the last
        // element.
        self.bottom.store(target, Ordering::SeqCst);
        let top = self.top.load(Ordering::SeqCst);
        if top <= target {
            if top == target {
                // Single element left: race thieves for it via the top CAS.
                let won = self
                    .top
                    .compare_exchange(top, top + 1, Ordering::SeqCst, Ordering::Relaxed)
                    .is_ok();
                self.bottom.store(target + 1, Ordering::SeqCst);
                if won {
                    // SAFETY: the CAS transferred this slot's reference.
                    return Some(unsafe { Arc::from_raw(raw) });
                }
                return None;
            }
            // SAFETY: bottom was published before re-reading top, so no
            // thief can have claimed `target`.
            return Some(unsafe { Arc::from_raw(raw) });
        }
        // A thief took it first; restore bottom.
        self.bottom.store(target + 1, Ordering::SeqCst);
        None
    }

    /// Racy emptiness check for the sleep path (precise enough under the
    /// Dekker pairing with the producer's post-push wakeup).
    pub(crate) fn is_empty(&self) -> bool {
        self.top.load(Ordering::SeqCst) >= self.bottom.load(Ordering::SeqCst)
    }

    /// Number of queued tasks (racy; for stats and tests).
    pub(crate) fn len(&self) -> usize {
        let bottom = self.bottom.load(Ordering::SeqCst);
        let top = self.top.load(Ordering::SeqCst);
        bottom.saturating_sub(top) as usize
    }

    /// Owner-only: replace the ring with one of twice the capacity.
    fn grow(&self, top: u64, bottom: u64) -> *mut Buffer {
        let old = self.buffer.load(Ordering::Relaxed);
        // SAFETY: live allocation, owner thread.
        let new = Box::new(Buffer::new((unsafe { (*old).capacity() } * 2) as usize));
        for index in top..bottom {
            let value = unsafe { (*old).at(index).load(Ordering::Relaxed) };
            new.at(index).store(value, Ordering::Relaxed);
        }
        let new = Box::into_raw(new);
        self.buffer.store(new, Ordering::Release);
        // Thieves may still be reading the old buffer: retire, free on drop.
        // SAFETY: `retired` is owner-only.
        unsafe { (*self.retired.get()).push(old) };
        new
    }
}

impl Drop for StealQueue {
    fn drop(&mut self) {
        while self.take().is_some() {}
        // SAFETY: exclusive access in drop; these pointers came from
        // `Box::into_raw` and are freed exactly once.
        unsafe {
            for retired in (*self.retired.get()).drain(..) {
                drop(Box::from_raw(retired));
            }
            drop(Box::from_raw(self.buffer.load(Ordering::Relaxed)));
        }
    }
}

/// One slot of the [`Inbox`]: a sequence number plus the task pointer.
struct InboxSlot {
    sequence: AtomicU64,
    value: UnsafeCell<MaybeUninit<*const Task>>,
}

/// Bounded MPMC ring (Vyukov's algorithm): lock-free pushes from any thread,
/// lock-free pops from any thread, per-slot sequence numbers carrying
/// ownership. A full inbox rejects the push — the caller falls back (owner
/// deque or a sibling inbox), so producers never block the hot path.
pub(crate) struct Inbox {
    slots: Box<[InboxSlot]>,
    mask: u64,
    /// Next position to claim for a push.
    enqueue: AtomicU64,
    /// Next position to claim for a pop.
    dequeue: AtomicU64,
}

// SAFETY: slot values are only accessed by the thread that claimed the slot
// via the corresponding CAS, with the sequence number store/load pair
// ordering the handover.
unsafe impl Send for Inbox {}
unsafe impl Sync for Inbox {}

impl Inbox {
    pub(crate) fn new() -> Inbox {
        Inbox::with_capacity(INBOX_CAPACITY)
    }

    fn with_capacity(capacity: usize) -> Inbox {
        debug_assert!(capacity.is_power_of_two());
        Inbox {
            slots: (0..capacity)
                .map(|index| InboxSlot {
                    sequence: AtomicU64::new(index as u64),
                    value: UnsafeCell::new(MaybeUninit::uninit()),
                })
                .collect(),
            mask: capacity as u64 - 1,
            enqueue: AtomicU64::new(0),
            dequeue: AtomicU64::new(0),
        }
    }

    /// Push from any thread. Returns the task back if the inbox is full.
    pub(crate) fn push(&self, task: Arc<Task>) -> Result<(), Arc<Task>> {
        loop {
            let position = self.enqueue.load(Ordering::Relaxed);
            let slot = &self.slots[(position & self.mask) as usize];
            let sequence = slot.sequence.load(Ordering::Acquire);
            if sequence == position {
                // SeqCst success ordering: `is_empty` (the pre-park
                // work re-check) reads this cursor, so the advance must be
                // in the SC order with the sleep-flag protocol.
                if self
                    .enqueue
                    .compare_exchange_weak(
                        position,
                        position + 1,
                        Ordering::SeqCst,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    // SAFETY: the CAS gave this thread exclusive write access
                    // to the slot until the sequence store below.
                    unsafe { (*slot.value.get()).write(Arc::into_raw(task)) };
                    slot.sequence.store(position + 1, Ordering::SeqCst);
                    return Ok(());
                }
            } else if sequence < position {
                return Err(task); // full: a lap behind
            }
            // Another producer claimed this slot first; retry at the new tail.
        }
    }

    /// Pop from any thread (the owning worker or a thief).
    pub(crate) fn pop(&self) -> Option<Arc<Task>> {
        loop {
            let position = self.dequeue.load(Ordering::Relaxed);
            let slot = &self.slots[(position & self.mask) as usize];
            let sequence = slot.sequence.load(Ordering::Acquire);
            if sequence == position + 1 {
                if self
                    .dequeue
                    .compare_exchange_weak(
                        position,
                        position + 1,
                        Ordering::SeqCst,
                        Ordering::Relaxed,
                    )
                    .is_ok()
                {
                    // SAFETY: the CAS gave this thread exclusive read access;
                    // the producer's sequence store published the write.
                    let raw = unsafe { (*slot.value.get()).assume_init() };
                    slot.sequence
                        .store(position + self.mask + 1, Ordering::Release);
                    // SAFETY: ownership of the reference moves to the caller.
                    return Some(unsafe { Arc::from_raw(raw) });
                }
            } else if sequence <= position {
                return None; // empty (or a producer is mid-publish)
            }
            // Another consumer claimed this slot first; retry at the new head.
        }
    }

    /// Racy emptiness check for the sleep path. May briefly report non-empty
    /// for a push still being published — the worker then simply re-loops.
    pub(crate) fn is_empty(&self) -> bool {
        self.dequeue.load(Ordering::SeqCst) >= self.enqueue.load(Ordering::SeqCst)
    }

    /// Number of queued tasks (racy; for stats and tests).
    pub(crate) fn len(&self) -> usize {
        let enqueue = self.enqueue.load(Ordering::SeqCst);
        let dequeue = self.dequeue.load(Ordering::SeqCst);
        enqueue.saturating_sub(dequeue) as usize
    }
}

impl Drop for Inbox {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

/// One worker's queues.
pub(crate) struct WorkerQueue {
    /// Owner-pushed work (dependence successors released by this worker).
    pub(crate) deque: StealQueue,
    /// Work delivered by other threads (master round-robin distribution,
    /// successors released by sibling workers).
    pub(crate) inbox: Inbox,
    /// Number of tasks in `spill`; lets consumers skip the spill lock with a
    /// single load on the (overwhelmingly common) spill-empty fast path.
    spill_len: AtomicUsize,
    /// Unbounded overflow behind the inbox. Only touched when a producer
    /// outruns the consumers by a full inbox (e.g. a master spawning a burst
    /// far faster than workers drain) — without it, producers would have to
    /// spin-yield on full inboxes, serialising exactly the flood workloads
    /// the scheduler exists for. FIFO order is preserved: once anything
    /// spills, later external pushes spill too until the spill drains, so
    /// inbox entries are always older than spill entries.
    spill: std::sync::Mutex<std::collections::VecDeque<Arc<Task>>>,
}

impl WorkerQueue {
    fn new() -> WorkerQueue {
        WorkerQueue {
            deque: StealQueue::new(),
            inbox: Inbox::new(),
            spill_len: AtomicUsize::new(0),
            spill: std::sync::Mutex::new(std::collections::VecDeque::new()),
        }
    }

    /// External (non-owner) push: lock-free inbox first, spill on overflow.
    fn push_external(&self, task: Arc<Task>) {
        let task = if self.spill_len.load(Ordering::SeqCst) == 0 {
            match self.inbox.push(task) {
                Ok(()) => return,
                Err(rejected) => rejected,
            }
        } else {
            task
        };
        let mut spill = self.spill.lock().unwrap();
        spill.push_back(task);
        self.spill_len.fetch_add(1, Ordering::SeqCst);
    }

    fn pop_spill(&self) -> Option<Arc<Task>> {
        if self.spill_len.load(Ordering::SeqCst) == 0 {
            return None;
        }
        let mut spill = self.spill.lock().unwrap();
        let task = spill.pop_front();
        if task.is_some() {
            self.spill_len.fetch_sub(1, Ordering::SeqCst);
        }
        task
    }

    fn pop(&self) -> Option<Arc<Task>> {
        self.deque
            .take()
            .or_else(|| self.inbox.pop())
            .or_else(|| self.pop_spill())
    }

    fn has_work(&self) -> bool {
        !self.deque.is_empty()
            || !self.inbox.is_empty()
            || self.spill_len.load(Ordering::SeqCst) > 0
    }
}

/// The set of all worker queues plus the round-robin cursor used to
/// distribute tasks, mirroring the paper's master/slave layout.
pub(crate) struct QueueSet {
    workers: Box<[WorkerQueue]>,
    next: AtomicUsize,
}

impl QueueSet {
    pub(crate) fn new(workers: usize) -> QueueSet {
        assert!(workers > 0, "at least one worker queue is required");
        QueueSet {
            workers: (0..workers).map(|_| WorkerQueue::new()).collect(),
            next: AtomicUsize::new(0),
        }
    }

    /// Number of worker queues.
    pub(crate) fn len(&self) -> usize {
        self.workers.len()
    }

    /// Enqueue a task and return the index of the worker that should be
    /// woken.
    ///
    /// `local` identifies the calling thread when it is one of this
    /// runtime's workers: that worker pushes straight onto its own stealable
    /// deque — the zero-contention single-producer fast path. Every other
    /// thread (the master above all) distributes round-robin across worker
    /// inboxes, the paper's distribution scheme, overflowing into the
    /// target's unbounded spill when the inbox is full so producers never
    /// stall.
    pub(crate) fn push(&self, task: Arc<Task>, local: Option<usize>) -> usize {
        if let Some(worker) = local {
            debug_assert!(worker < self.workers.len());
            self.workers[worker].deque.push(task);
            return worker;
        }
        let target = self.next.fetch_add(1, Ordering::Relaxed) % self.workers.len();
        self.workers[target].push_external(task);
        target
    }

    /// Worker-local pop: oldest own-deque task first, then the inbox, then
    /// the spill.
    pub(crate) fn pop_local(&self, worker: usize) -> Option<Arc<Task>> {
        self.workers[worker].pop()
    }

    /// Attempt to steal on behalf of `thief`, scanning the other workers'
    /// deques, inboxes and spills.
    pub(crate) fn steal(&self, thief: usize) -> Option<Arc<Task>> {
        let count = self.workers.len();
        for offset in 1..count {
            let victim = &self.workers[(thief + offset) % count];
            if let Some(task) = victim.pop() {
                return Some(task);
            }
        }
        None
    }

    /// Whether any queue holds work (racy; used by the sleep protocol under
    /// the Dekker pairing described in [`crate::sync::Parker`]).
    pub(crate) fn any_work(&self) -> bool {
        self.workers.iter().any(WorkerQueue::has_work)
    }

    /// Total queued (issued but not yet started) tasks, racy, for tests.
    #[cfg_attr(not(test), allow(dead_code))]
    pub(crate) fn total_queued(&self) -> usize {
        self.workers
            .iter()
            .map(|w| w.deque.len() + w.inbox.len() + w.spill_len.load(Ordering::SeqCst))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::group::{GroupId, GroupState};
    use crate::significance::Significance;
    use crate::task::TaskId;
    use std::sync::atomic::AtomicUsize;

    fn group() -> Arc<GroupState> {
        Arc::new(GroupState::new(
            GroupId::GLOBAL,
            Arc::from("<test>"),
            1.0,
            1,
        ))
    }

    fn task(id: u64) -> Arc<Task> {
        Arc::new(Task::new(
            TaskId(id),
            group(),
            Significance::CRITICAL,
            Box::new(|| {}),
            None,
            Vec::new(),
            false,
        ))
    }

    #[test]
    fn steal_queue_is_fifo() {
        let q = StealQueue::new();
        q.push(task(1));
        q.push(task(2));
        q.push(task(3));
        assert_eq!(q.len(), 3);
        assert_eq!(q.take().unwrap().id, TaskId(1));
        assert_eq!(q.take().unwrap().id, TaskId(2));
        assert_eq!(q.take().unwrap().id, TaskId(3));
        assert!(q.take().is_none());
        assert!(q.is_empty());
    }

    #[test]
    fn steal_queue_grows_past_initial_capacity() {
        let q = StealQueue::new();
        let n = (INITIAL_DEQUE_CAPACITY * 4 + 3) as u64;
        for i in 0..n {
            q.push(task(i));
        }
        assert_eq!(q.len(), n as usize);
        for i in 0..n {
            assert_eq!(q.take().unwrap().id, TaskId(i));
        }
        assert!(q.take().is_none());
    }

    #[test]
    fn steal_queue_pop_newest_is_lifo() {
        let q = StealQueue::new();
        q.push(task(1));
        q.push(task(2));
        assert_eq!(q.pop_newest().unwrap().id, TaskId(2));
        assert_eq!(q.take().unwrap().id, TaskId(1));
        assert!(q.pop_newest().is_none());
    }

    #[test]
    fn steal_queue_drop_releases_queued_tasks() {
        let q = StealQueue::new();
        let probe = task(9);
        q.push(probe.clone());
        drop(q);
        assert_eq!(Arc::strong_count(&probe), 1, "queue must release its ref");
    }

    #[test]
    fn concurrent_consumers_take_each_task_once() {
        let q = Arc::new(StealQueue::new());
        let n = 10_000u64;
        for i in 0..n {
            q.push(task(i));
        }
        let taken = Arc::new(AtomicUsize::new(0));
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let q = q.clone();
                let taken = taken.clone();
                std::thread::spawn(move || {
                    while q.take().is_some() {
                        taken.fetch_add(1, Ordering::Relaxed);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(taken.load(Ordering::Relaxed), n as usize);
    }

    #[test]
    fn inbox_round_trips_in_order() {
        let inbox = Inbox::with_capacity(8);
        assert!(inbox.is_empty());
        for i in 0..5 {
            inbox.push(task(i)).unwrap();
        }
        assert_eq!(inbox.len(), 5);
        for i in 0..5 {
            assert_eq!(inbox.pop().unwrap().id, TaskId(i));
        }
        assert!(inbox.pop().is_none());
    }

    #[test]
    fn inbox_rejects_when_full_then_recovers() {
        let inbox = Inbox::with_capacity(4);
        for i in 0..4 {
            inbox.push(task(i)).unwrap();
        }
        let rejected = inbox.push(task(99)).unwrap_err();
        assert_eq!(rejected.id, TaskId(99));
        assert_eq!(inbox.pop().unwrap().id, TaskId(0));
        inbox.push(rejected).unwrap();
        assert_eq!(inbox.len(), 4);
    }

    #[test]
    fn inbox_concurrent_producers_and_consumers() {
        let inbox = Arc::new(Inbox::with_capacity(64));
        let produced = 4 * 2_500usize;
        let consumed = Arc::new(AtomicUsize::new(0));
        let producers: Vec<_> = (0..4)
            .map(|p| {
                let inbox = inbox.clone();
                std::thread::spawn(move || {
                    for i in 0..2_500u64 {
                        let mut item = task(p * 10_000 + i);
                        loop {
                            match inbox.push(item) {
                                Ok(()) => break,
                                Err(back) => {
                                    item = back;
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..2)
            .map(|_| {
                let inbox = inbox.clone();
                let consumed = consumed.clone();
                std::thread::spawn(move || loop {
                    if inbox.pop().is_some() {
                        consumed.fetch_add(1, Ordering::Relaxed);
                    } else if consumed.load(Ordering::Relaxed) >= 10_000 {
                        break;
                    } else {
                        std::thread::yield_now();
                    }
                })
            })
            .collect();
        for h in producers {
            h.join().unwrap();
        }
        for h in consumers {
            h.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::Relaxed), produced);
        assert!(inbox.is_empty());
    }

    #[test]
    fn queue_set_external_push_is_round_robin() {
        let set = QueueSet::new(4);
        for i in 0..8 {
            set.push(task(i), None);
        }
        for w in 0..4 {
            assert_eq!(
                set.workers[w].inbox.len(),
                2,
                "worker {w} should hold 2 tasks"
            );
        }
        assert_eq!(set.total_queued(), 8);
    }

    #[test]
    fn worker_queue_spills_past_a_full_inbox_and_preserves_order() {
        let queue = WorkerQueue::new();
        let n = INBOX_CAPACITY as u64 + 100;
        for i in 0..n {
            queue.push_external(task(i));
        }
        assert_eq!(queue.spill_len.load(Ordering::SeqCst), 100);
        for i in 0..n {
            assert_eq!(queue.pop().unwrap().id, TaskId(i), "order broken at {i}");
        }
        assert!(!queue.has_work());
    }

    #[test]
    fn queue_set_local_push_goes_to_own_deque() {
        let set = QueueSet::new(2);
        let woken = set.push(task(1), Some(1));
        assert_eq!(woken, 1);
        assert_eq!(set.workers[1].deque.len(), 1);
        assert_eq!(set.workers[1].inbox.len(), 0);
        assert_eq!(set.pop_local(1).unwrap().id, TaskId(1));
    }

    #[test]
    fn steal_scans_other_queues_and_inboxes() {
        let set = QueueSet::new(3);
        set.push(task(7), Some(2));
        let stolen = set.steal(0).expect("worker 0 should steal from worker 2");
        assert_eq!(stolen.id, TaskId(7));
        assert!(set.steal(0).is_none());
        // Inbox work is stealable too.
        set.workers[1].inbox.push(task(8)).unwrap();
        assert_eq!(set.steal(0).unwrap().id, TaskId(8));
    }

    #[test]
    fn steal_never_takes_from_own_queue() {
        let set = QueueSet::new(2);
        set.push(task(9), Some(1));
        assert!(
            set.steal(1).is_none(),
            "a worker must not steal from itself"
        );
        assert_eq!(set.workers[1].deque.len(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one worker")]
    fn zero_workers_panics() {
        QueueSet::new(0);
    }

    #[test]
    fn single_worker_set() {
        let set = QueueSet::new(1);
        set.push(task(1), None);
        set.push(task(2), Some(0));
        assert!(set.any_work());
        assert_eq!(set.total_queued(), 2);
        assert!(set.steal(0).is_none());
        assert!(set.pop_local(0).is_some());
        assert!(set.pop_local(0).is_some());
        assert!(!set.any_work());
    }
}

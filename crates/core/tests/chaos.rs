//! Deterministic chaos suite: drive every policy through a mixed workload
//! under seeded fault injection (body panics, worker stalls, dilated
//! execution) combined with overload shedding, deadlines and mid-stream
//! cancellation, then audit the runtime's robustness invariants:
//!
//! * **no deadlock / no lost wakeups** — every barrier returns;
//! * **exactly-once accounting** — after a barrier,
//!   `spawned == completed + cancelled + panicked + shed`;
//! * **liveness** — the runtime still executes fresh work after the storm.
//!
//! Determinism is the point: each round is a pure function of
//! `(policy, seed)` via [`FaultPlan`], so a failure reproduces exactly.
//!
//! The non-`#[ignore]` tests are a small tier-1 smoke subset. The full
//! matrix (4 policies x 8 seeds) runs in CI as a dedicated chaos step:
//! `cargo test -p sig-core --release --test chaos -- --ignored`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sig_core::{BatchTask, CancelToken, DepKey, FaultPlan, Policy, Runtime};

const POLICIES: [Policy; 4] = [
    Policy::SignificanceAgnostic,
    Policy::Gtb { buffer_size: 16 },
    Policy::GtbMaxBuffer,
    Policy::Lqh,
];

/// One chaos round: four waves of mixed work (plain significance spread,
/// dependence chains, a cancelled batch plus a cancelled token stream,
/// nested spawns) under a seeded fault plan, followed by the accounting
/// audit and a liveness probe.
fn chaos_round(policy: Policy, seed: u64, wave: usize) {
    let rt = Arc::new(
        Runtime::builder()
            .workers(4)
            .policy(policy)
            // Half the seeds run genuinely overloaded (tiny watermark), the
            // other half keep the controller armed but out of reach.
            .queue_watermark(if seed.is_multiple_of(2) {
                32
            } else {
                1_000_000
            })
            .deadline_miss_watermark(0.9)
            .fault_plan(
                FaultPlan::new(seed)
                    .panics(150)
                    .stalls(50, Duration::from_micros(200))
                    .dilation(100, Duration::from_micros(100)),
            )
            .build(),
    );
    let group = rt.create_group("chaos", 0.5);

    // Wave 1: plain tasks across the significance spectrum, a third of them
    // with deadlines tight enough to miss under stalls and dilation.
    for i in 0..wave {
        rt.task(|| {})
            .approx(|| {})
            .significance((i % 10) as f64 / 10.0)
            .group(&group)
            .deadline(Duration::from_millis(if i % 3 == 0 { 1 } else { 10_000 }))
            .spawn();
    }

    // Wave 2: dependence chains over a handful of keys. Injected panics
    // poison keys mid-chain; downstream tasks must still run (poison is
    // data-flow metadata, not a scheduling block).
    let keys: Vec<DepKey> = (0..4)
        .map(|k| DepKey::named(&format!("chaos-{seed}-{k}")))
        .collect();
    for i in 0..wave / 2 {
        rt.task(|| {})
            .reads([keys[i % keys.len()]])
            .writes([keys[(i + 1) % keys.len()]])
            .significance(1.0)
            .spawn();
    }

    // Wave 3a: a whole batch cancelled by id range right after injection.
    let doomed = rt
        .batch()
        .group(&group)
        .spawn_tasks((0..wave).map(|i| BatchTask::new(|| {}).significance((i % 10) as f64 / 10.0)));
    rt.cancel_tasks(&doomed);

    // Wave 3b: a token-carrying stream cancelled mid-flight.
    let token = CancelToken::new();
    for _ in 0..wave / 2 {
        rt.task(|| {})
            .cancel_token(&token)
            .significance(0.2)
            .spawn();
    }
    token.cancel();

    // Wave 4: nested spawns from inside executing bodies (the parents may
    // themselves draw injected panics, in which case the children never
    // exist — the books must balance either way).
    for _ in 0..8 {
        let rt2 = rt.clone();
        rt.task(move || {
            rt2.task(|| {}).significance(0.9).spawn();
        })
        .significance(1.0)
        .spawn();
    }

    // No deadlock, no lost wakeups: the barrier returns. Exactly-once
    // accounting: every spawned task reached exactly one terminal outcome.
    let summary = rt.wait_all();
    assert_eq!(
        summary.completed + summary.cancelled + summary.panicked + summary.shed,
        summary.spawned,
        "{policy:?} seed {seed}: books must balance: {summary:?}"
    );
    assert!(
        summary.spawned >= wave,
        "{policy:?} seed {seed}: {summary:?}"
    );

    // Liveness: the runtime still runs fresh work after the storm. The
    // probes themselves are subject to fault injection, so several are
    // spawned and at least one must actually execute; the books must still
    // balance afterwards.
    let after = Arc::new(AtomicUsize::new(0));
    for _ in 0..16 {
        let a = after.clone();
        rt.task(move || {
            a.fetch_add(1, Ordering::Relaxed);
        })
        .significance(1.0)
        .spawn();
    }
    let summary = rt.wait_all();
    assert!(
        after.load(Ordering::Relaxed) >= 1,
        "{policy:?} seed {seed}: no probe survived"
    );
    assert_eq!(
        summary.completed + summary.cancelled + summary.panicked + summary.shed,
        summary.spawned,
        "{policy:?} seed {seed}: books must balance after probes: {summary:?}"
    );
}

// ---- Tier-1 smoke subset (fast, always on) -------------------------------

#[test]
fn chaos_smoke_agnostic() {
    for seed in [1, 2] {
        chaos_round(Policy::SignificanceAgnostic, seed, 150);
    }
}

#[test]
fn chaos_smoke_gtb_max_buffer() {
    for seed in [1, 2] {
        chaos_round(Policy::GtbMaxBuffer, seed, 150);
    }
}

// ---- Full matrix (CI chaos step: `--ignored`) ----------------------------

#[test]
#[ignore = "full chaos matrix; run via the CI chaos step or --ignored"]
fn chaos_matrix_all_policies_eight_seeds() {
    for policy in POLICIES {
        for seed in 0..8 {
            chaos_round(policy, seed, 400);
        }
    }
}

#[test]
#[ignore = "full chaos matrix; run via the CI chaos step or --ignored"]
fn chaos_matrix_panic_storm() {
    // A harsher plan: nearly half of all tasks die. The runtime must keep
    // its books and its liveness regardless.
    for policy in POLICIES {
        let rt = Runtime::builder()
            .workers(4)
            .policy(policy)
            .fault_plan(FaultPlan::new(7).panics(450))
            .build();
        let group = rt.create_group("storm", 0.5);
        for i in 0..2000 {
            rt.task(|| {})
                .approx(|| {})
                .significance((i % 10) as f64 / 10.0)
                .group(&group)
                .spawn();
        }
        let summary = rt.wait_all();
        assert_eq!(
            summary.completed + summary.cancelled + summary.panicked + summary.shed,
            summary.spawned,
            "{policy:?}: {summary:?}"
        );
        assert!(summary.panicked > 0, "{policy:?}: {summary:?}");
    }
}

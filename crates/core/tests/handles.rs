//! Integration tests for the serving-facing core primitives: spawn handles
//! resolving to terminal outcomes, per-task batch deadline offsets, single-id
//! range cancellation, and the per-level shed histogram.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use sig_core::{
    BatchTask, CancelToken, ExecutionMode, FaultPlan, Policy, Runtime, TaskIdRange, TaskOutcome,
};

/// Spin until `gate` is released — keeps a worker busy without sleeping so
/// queued tasks stay queued deterministically.
fn hold(gate: &Arc<AtomicBool>) {
    while !gate.load(Ordering::Acquire) {
        std::hint::spin_loop();
    }
}

#[test]
fn handle_resolves_with_value_on_completion() {
    let rt = Runtime::builder().workers(2).build();
    let handle = rt.submit(|| 21 * 2).significance(0.5).spawn();
    assert_eq!(
        handle.wait(),
        TaskOutcome::Completed(ExecutionMode::Accurate)
    );
    assert_eq!(handle.take_value(), Some(42));
    assert!(handle.finished_at().is_some());
}

#[test]
fn handle_resolves_panicked_under_fault_injection() {
    // per-mille 1000: every task draws an injected panic.
    let rt = Runtime::builder()
        .workers(2)
        .fault_plan(FaultPlan::new(7).panics(1000))
        .build();
    let handle = rt.submit(|| 1u32).spawn();
    assert_eq!(handle.wait(), TaskOutcome::Panicked);
    assert_eq!(handle.take_value(), None, "panicked task yields no value");
    let outcomes = rt.wait_all();
    assert_eq!(outcomes.panicked, 1);
}

#[test]
fn handle_resolves_cancelled_via_token_and_single_id_range() {
    let rt = Runtime::builder().workers(1).build();
    let gate = Arc::new(AtomicBool::new(false));
    let g = gate.clone();
    rt.task(move || hold(&g)).spawn();

    // Queued behind the gate: both cancellation channels land before dequeue.
    let token = CancelToken::new();
    let by_token = rt.submit(|| 1u32).cancel_token(&token).spawn();
    let by_range = rt.submit(|| 2u32).spawn();
    token.cancel();
    rt.cancel_tasks(&TaskIdRange::single(by_range.id()));
    gate.store(true, Ordering::Release);

    assert_eq!(by_token.wait(), TaskOutcome::Cancelled);
    assert_eq!(by_range.wait(), TaskOutcome::Cancelled);
    let outcomes = rt.wait_all();
    assert_eq!(outcomes.cancelled, 2);
    assert_eq!(outcomes.spawned, outcomes.completed + outcomes.cancelled);
}

#[test]
fn brownout_shed_resolves_handles_and_fills_level_histogram() {
    let rt = Runtime::builder()
        .workers(1)
        .policy(Policy::Lqh)
        .queue_watermark(4)
        .build();
    let group = rt.create_group("shed", 0.0);
    let gate = Arc::new(AtomicBool::new(false));
    let g = gate.clone();
    rt.task(move || hold(&g)).spawn();

    // A deep backlog of sub-critical, approximate-tier (ratio 0.0) tasks:
    // once the overload tick recomputes the threshold, the controller sheds
    // strictly lowest-significance-first.
    let mut handles = Vec::new();
    for i in 0..400u32 {
        let significance = 0.1 + 0.2 * ((i % 3) as f64) / 10.0;
        handles.push(
            rt.submit(|| ())
                .group(&group)
                .significance(significance)
                .spawn(),
        );
    }
    gate.store(true, Ordering::Release);
    let outcomes = rt.wait_all();

    assert!(outcomes.shed > 0, "deep backlog over watermark must shed");
    assert_eq!(
        outcomes.shed_by_level.total(),
        outcomes.shed as u64,
        "histogram mass equals the aggregate shed count"
    );
    let shed_handles = handles
        .iter()
        .filter(|h| h.try_outcome() == Some(TaskOutcome::Shed))
        .count();
    assert_eq!(shed_handles, outcomes.shed, "every shed task resolved Shed");
    let highest = outcomes.shed_by_level.highest_level().unwrap();
    assert!(
        highest.to_significance().value() < 1.0,
        "critical tasks are never shed"
    );
    assert_eq!(
        outcomes.spawned,
        outcomes.completed + outcomes.cancelled + outcomes.panicked + outcomes.shed
    );
}

#[test]
fn batch_deadline_offsets_override_batch_deadline() {
    let rt = Runtime::builder().workers(1).build();
    let gate = Arc::new(AtomicBool::new(false));
    let g = gate.clone();
    rt.task(move || hold(&g)).spawn();

    // Batch-wide deadline is far away; task 1 carries a 1 ns offset that has
    // long passed by the time the gate opens.
    let range = rt
        .batch()
        .deadline(Duration::from_secs(3600))
        .deadline_offset(1, 1)
        .task(BatchTask::new(|| {}))
        .task(BatchTask::new(|| {}))
        .spawn();
    assert_eq!(range.len(), 2);
    std::thread::sleep(Duration::from_millis(5));
    gate.store(true, Ordering::Release);
    let outcomes = rt.wait_all();
    assert_eq!(outcomes.deadline_misses, 1, "only the offset task missed");
    assert_eq!(outcomes.spawned, outcomes.completed);
}

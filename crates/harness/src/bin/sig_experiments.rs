//! `sig-experiments` — command-line driver regenerating the paper's tables
//! and figures.
//!
//! ```text
//! sig-experiments table1
//! sig-experiments fig1  [output-dir]
//! sig-experiments fig2  [benchmark] [--csv]
//! sig-experiments fig3  [output-dir]
//! sig-experiments fig4  [benchmark]
//! sig-experiments table2 [benchmark]
//! sig-experiments all   [output-dir]
//! ```

use std::path::PathBuf;

use sig_harness::experiment::ExperimentDefaults;
use sig_harness::{fig1, fig2, fig3, fig4, report, table1, table2};
use sig_kernels::sobel::Sobel;

fn print_usage() {
    eprintln!(
        "usage: sig-experiments <table1|fig1|fig2|fig3|fig4|table2|all> [benchmark|output-dir] [--csv]"
    );
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        print_usage();
        std::process::exit(1);
    };
    let csv = args.iter().any(|a| a == "--csv");
    let extra: Option<&str> = args
        .get(1)
        .map(String::as_str)
        .filter(|a| !a.starts_with("--"));
    let defaults = ExperimentDefaults::default();

    match command.as_str() {
        "table1" => {
            println!("Table 1: benchmark configuration\n");
            println!("{}", table1::render());
        }
        "fig1" => {
            let dir = PathBuf::from(extra.unwrap_or("experiment-output"));
            let sobel = Sobel::default();
            let out = fig1::generate_and_save(&sobel, &defaults, &dir)
                .expect("failed to write Figure 1 image");
            println!("Figure 1: Sobel under increasing approximation");
            println!("image written to {}", dir.join("fig1_sobel.pgm").display());
            for q in &out.quadrants {
                println!("  {:<10} PSNR = {:.2} dB", q.label, q.psnr_db);
            }
        }
        "fig3" => {
            let dir = PathBuf::from(extra.unwrap_or("experiment-output"));
            let sobel = Sobel::default();
            let out = fig3::generate_and_save(&sobel, &defaults, &dir)
                .expect("failed to write Figure 3 image");
            println!("Figure 3: Sobel under loop perforation");
            println!(
                "image written to {}",
                dir.join("fig3_sobel_perforation.pgm").display()
            );
            for level in &out.levels {
                println!(
                    "  drop {:>5.0}%  PSNR = {:.2} dB",
                    level.dropped_fraction * 100.0,
                    level.psnr_db
                );
            }
        }
        "fig2" => {
            println!("Figure 2: execution time, energy and quality\n");
            let points = fig2::run(extra, &defaults);
            if csv {
                print!("{}", report::to_csv(&points));
            } else {
                print!("{}", report::to_table(&points));
            }
        }
        "fig4" => {
            println!("Figure 4: runtime overhead at 100% accuracy (normalised time)\n");
            let rows = fig4::run(extra, &defaults);
            print!("{}", fig4::render(&rows));
        }
        "table2" => {
            println!("Table 2: policy accuracy (Medium degree)\n");
            let rows = table2::run(extra, &defaults);
            print!("{}", table2::render(&rows));
        }
        "all" => {
            let dir = PathBuf::from(extra.unwrap_or("experiment-output"));
            println!("Table 1\n{}", table1::render());
            let sobel = Sobel::default();
            fig1::generate_and_save(&sobel, &defaults, &dir).expect("fig1");
            fig3::generate_and_save(&sobel, &defaults, &dir).expect("fig3");
            println!("Figure 1 / Figure 3 images written to {}", dir.display());
            let points = fig2::run(None, &defaults);
            println!("\nFigure 2\n{}", report::to_table(&points));
            std::fs::create_dir_all(&dir).expect("output dir");
            std::fs::write(dir.join("fig2.csv"), report::to_csv(&points)).expect("fig2.csv");
            let rows = fig4::run(None, &defaults);
            println!("\nFigure 4\n{}", fig4::render(&rows));
            let rows = table2::run(None, &defaults);
            println!("\nTable 2\n{}", table2::render(&rows));
        }
        _ => {
            print_usage();
            std::process::exit(1);
        }
    }
}

//! Figure 3: Sobel output under loop perforation.
//!
//! Quadrants: accurate, 20% perforation, 70% perforation, 100% perforation
//! (upper-left, upper-right, lower-left, lower-right). Contrasted with
//! Figure 1, this shows why significance-driven approximation degrades far
//! more gracefully than blindly dropping iterations.

use std::path::Path;

use serde::{Deserialize, Serialize};

use sig_kernels::sobel::Sobel;
use sig_quality::{psnr, GrayImage};

use crate::experiment::ExperimentDefaults;

/// PSNR and modelled energy of one perforation level against the accurate
/// Sobel output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct PerforationQuality {
    /// Fraction of loop iterations dropped.
    pub dropped_fraction: f64,
    /// PSNR in dB against the accurate output.
    pub psnr_db: f64,
    /// Modelled energy of the perforated run in joules (power model
    /// integrated over the measured serial window).
    pub energy_joules: f64,
    /// Idle component of `energy_joules` (serial runs leave all other cores
    /// halted for the whole window).
    pub idle_joules: f64,
    /// Transition component of `energy_joules` — always zero for these
    /// serial runs, kept so the row shape matches the runtime-driven tables.
    pub transition_joules: f64,
}

/// Result of the Figure 3 generation.
#[derive(Debug)]
pub struct Fig3Output {
    /// The composed quadrant image.
    pub image: GrayImage,
    /// Per-quadrant quality.
    pub levels: Vec<PerforationQuality>,
}

/// Generate the Figure 3 composition (perforation of 0%, 20%, 70% and 100%
/// of the row loop).
pub fn generate(sobel: &Sobel, defaults: &ExperimentDefaults) -> Fig3Output {
    let accurate = sobel.run_perforated(1.0);
    let p20 = sobel.run_perforated(0.8);
    let p70 = sobel.run_perforated(0.3);
    let p100 = sobel.run_perforated(0.0);

    let image = GrayImage::quadrants(
        &sobel.output_image(&accurate.values),
        &sobel.output_image(&p20.values),
        &sobel.output_image(&p70.values),
        &sobel.output_image(&p100.values),
    );
    let level = |dropped: f64, psnr_db: f64, run: &sig_kernels::RunOutput| {
        let breakdown = defaults
            .power_model
            .energy_breakdown(run.elapsed.as_secs_f64(), run.busy_core_seconds);
        PerforationQuality {
            dropped_fraction: dropped,
            psnr_db,
            energy_joules: breakdown.total(),
            idle_joules: breakdown.idle_joules,
            transition_joules: breakdown.transition_joules,
        }
    };
    let levels = vec![
        level(0.0, f64::INFINITY, &accurate),
        level(0.2, psnr(&accurate.values, &p20.values, 255.0), &p20),
        level(0.7, psnr(&accurate.values, &p70.values, 255.0), &p70),
        level(1.0, psnr(&accurate.values, &p100.values, 255.0), &p100),
    ];
    Fig3Output { image, levels }
}

/// Generate Figure 3 and write the composed image to
/// `<dir>/fig3_sobel_perforation.pgm`.
pub fn generate_and_save(
    sobel: &Sobel,
    defaults: &ExperimentDefaults,
    dir: &Path,
) -> std::io::Result<Fig3Output> {
    let output = generate(sobel, defaults);
    std::fs::create_dir_all(dir)?;
    output
        .image
        .save_pgm(dir.join("fig3_sobel_perforation.pgm"))?;
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig1;

    #[test]
    fn heavier_perforation_means_lower_psnr() {
        let sobel = Sobel {
            width: 96,
            height: 96,
        };
        let defaults = ExperimentDefaults {
            workers: 2,
            ..Default::default()
        };
        let out = generate(&sobel, &defaults);
        assert_eq!(out.levels.len(), 4);
        assert!(out.levels[1].psnr_db >= out.levels[2].psnr_db);
        assert!(out.levels[2].psnr_db >= out.levels[3].psnr_db);
        assert!(out.levels.iter().all(|l| l.energy_joules > 0.0));
    }

    #[test]
    fn perforation_is_worse_than_significance_at_comparable_work() {
        // Figure 1 vs Figure 3, the paper's qualitative claim: at the same
        // amount of accurate work (30% of rows), the significance version
        // (Medium degree, approximates the rest) beats perforation (drops
        // the rest).
        let sobel = Sobel {
            width: 96,
            height: 96,
        };
        let defaults = ExperimentDefaults {
            workers: 2,
            ..Default::default()
        };
        let ours = fig1::generate(&sobel, &defaults);
        let perforated = generate(&sobel, &defaults);
        let ours_medium = ours.quadrants[2].psnr_db;
        let perf_70 = perforated.levels[2].psnr_db;
        assert!(
            ours_medium > perf_70,
            "significance Medium ({ours_medium} dB) should beat 70% perforation ({perf_70} dB)"
        );
    }
}

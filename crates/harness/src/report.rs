//! Report rendering: turn experiment points into CSV and aligned text tables.

use crate::experiment::ExperimentPoint;

/// Render experiment points as CSV (one row per point), with a header.
pub fn to_csv(points: &[ExperimentPoint]) -> String {
    let mut out = String::from(
        "benchmark,variant,degree,time_seconds,energy_joules,idle_joules,transition_joules,\
         frequency_transitions,quality,quality_metric,accurate_fraction\n",
    );
    for p in points {
        out.push_str(&format!(
            "{},{},{},{:.6},{:.3},{:.3},{:.6},{},{:.6},{},{:.4}\n",
            p.benchmark,
            p.variant,
            p.degree.as_deref().unwrap_or("-"),
            p.time_seconds,
            p.energy_joules,
            p.idle_joules,
            p.transition_joules,
            p.frequency_transitions,
            p.quality,
            p.quality_metric,
            p.accurate_fraction
        ));
    }
    out
}

/// Render experiment points as an aligned, human-readable table.
pub fn to_table(points: &[ExperimentPoint]) -> String {
    let mut out = String::new();
    out.push_str(&format!(
        "{:<14} {:<16} {:<8} {:>12} {:>14} {:>12} {:>8}\n",
        "benchmark", "variant", "degree", "time (s)", "energy (J)", "quality", "acc.frac"
    ));
    out.push_str(&"-".repeat(90));
    out.push('\n');
    for p in points {
        out.push_str(&format!(
            "{:<14} {:<16} {:<8} {:>12.4} {:>14.2} {:>12.5} {:>8.2}\n",
            p.benchmark,
            p.variant,
            p.degree.as_deref().unwrap_or("-"),
            p.time_seconds,
            p.energy_joules,
            p.quality,
            p.accurate_fraction
        ));
    }
    out
}

/// Render a generic named-column table (used by Table 1 / Table 2 /
/// Figure 4 reports).
pub fn generic_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    for (i, h) in header.iter().enumerate() {
        out.push_str(&format!("{:<width$}  ", h, width = widths[i]));
    }
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
    out.push('\n');
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            out.push_str(&format!("{:<width$}  ", cell, width = widths[i]));
        }
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point() -> ExperimentPoint {
        ExperimentPoint {
            benchmark: "Sobel".into(),
            variant: "LQH".into(),
            degree: Some("Mild".into()),
            time_seconds: 0.123,
            energy_joules: 45.6,
            idle_joules: 3.2,
            transition_joules: 0.05,
            frequency_transitions: 7,
            quality: 0.01,
            quality_metric: "PSNR^-1".into(),
            accurate_fraction: 0.8,
        }
    }

    #[test]
    fn csv_contains_header_and_row() {
        let csv = to_csv(&[point()]);
        assert!(csv.starts_with("benchmark,variant"));
        assert!(csv.contains("Sobel,LQH,Mild"));
        assert_eq!(csv.lines().count(), 2);
    }

    #[test]
    fn table_is_aligned_and_contains_data() {
        let table = to_table(&[point()]);
        assert!(table.contains("Sobel"));
        assert!(table.contains("LQH"));
        assert!(table.lines().count() >= 3);
    }

    #[test]
    fn generic_table_adapts_widths() {
        let table = generic_table(
            &["name", "value"],
            &[
                vec!["a-very-long-name".into(), "1".into()],
                vec!["b".into(), "2".into()],
            ],
        );
        assert!(table.contains("a-very-long-name"));
        assert!(table.lines().count() == 4);
    }
}

//! Figure 2: execution time, energy and quality for every benchmark under
//! each runtime policy and approximation degree, with the fully accurate
//! execution and loop perforation as reference lines.

use sig_core::Policy;
use sig_kernels::{all_benchmarks, Approach, Benchmark, Degree};

use crate::experiment::{measure, ExperimentDefaults, ExperimentPoint, PolicyChoice};

/// Run the Figure 2 sweep for one benchmark: accurate baseline, the three
/// policies at the three degrees, and perforation at the three degrees
/// (where applicable).
///
/// As in the paper, the accurate baseline is "a fully accurate execution of
/// each application, using a significance agnostic version of the runtime
/// system" — i.e. the parallel task version with every task accurate, not a
/// serial run.
pub fn run_benchmark(
    benchmark: &dyn Benchmark,
    defaults: &ExperimentDefaults,
) -> Vec<ExperimentPoint> {
    let reference = benchmark.run_full_accuracy(defaults.workers, Policy::SignificanceAgnostic);
    let mut points = Vec::new();
    points.push(ExperimentPoint::from_run(
        benchmark, "accurate", None, defaults, &reference, &reference,
    ));
    for degree in Degree::ALL {
        for choice in PolicyChoice::ALL {
            points.push(measure(
                benchmark,
                Approach::Significance {
                    policy: choice.to_policy(defaults.gtb_buffer),
                    degree,
                },
                defaults,
                &reference,
            ));
        }
        if benchmark.info().perforation_supported {
            points.push(measure(
                benchmark,
                Approach::Perforation { degree },
                defaults,
                &reference,
            ));
        }
    }
    points
}

/// Run the Figure 2 sweep for all benchmarks (or one, by name).
pub fn run(filter: Option<&str>, defaults: &ExperimentDefaults) -> Vec<ExperimentPoint> {
    let mut points = Vec::new();
    for benchmark in all_benchmarks() {
        if let Some(name) = filter {
            if !benchmark.name().eq_ignore_ascii_case(name) {
                continue;
            }
        }
        points.extend(run_benchmark(benchmark.as_ref(), defaults));
    }
    points
}

#[cfg(test)]
mod tests {
    use super::*;
    use sig_kernels::sobel::Sobel;

    #[test]
    fn sobel_sweep_has_expected_shape() {
        let sobel = Sobel {
            width: 64,
            height: 64,
        };
        let defaults = ExperimentDefaults {
            workers: 2,
            ..Default::default()
        };
        let points = run_benchmark(&sobel, &defaults);
        // 1 accurate + 3 degrees × (3 policies + perforation) = 13 points.
        assert_eq!(points.len(), 13);
        assert!(points.iter().any(|p| p.variant == "accurate"));
        assert!(points.iter().any(|p| p.variant == "perforation"));
        assert!(points.iter().any(|p| p.variant == "LQH"));
        // Quality degrades gracefully for the significance-driven variants;
        // blind perforation is allowed to be much worse (that is the point
        // of the comparison). Timing claims are made on realistic input
        // sizes by the Criterion benches, not on this 64×64 unit-test input
        // where thread start-up dominates.
        assert!(
            points
                .iter()
                .filter(|p| p.variant != "perforation")
                .all(|p| p.quality < 0.2),
            "{points:#?}"
        );
        let aggressive_lqh = points
            .iter()
            .find(|p| p.variant == "LQH" && p.degree.as_deref() == Some("Aggr"))
            .unwrap();
        assert!(aggressive_lqh.energy_joules > 0.0);
    }

    #[test]
    fn filter_selects_a_single_benchmark() {
        let defaults = ExperimentDefaults {
            workers: 2,
            ..Default::default()
        };
        // Use the smallest benchmark (MC with its default size is moderate;
        // filter test only checks selection logic).
        let points = run(Some("no-such-benchmark"), &defaults);
        assert!(points.is_empty());
    }
}

//! # sig-harness — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (Section 4)
//! from the Rust reproduction:
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`table1`] | Table 1 — benchmark configuration |
//! | [`fig1`] | Figure 1 — Sobel under None/Mild/Medium/Aggressive approximation |
//! | [`fig2`] | Figure 2 — execution time, energy and quality per benchmark, degree and policy |
//! | [`fig3`] | Figure 3 — Sobel under loop perforation |
//! | [`fig4`] | Figure 4 — runtime overhead of the policies at 100% accuracy |
//! | [`table2`] | Table 2 — policy accuracy (significance inversions, ratio deviation) |
//!
//! The `sig-experiments` binary exposes all of them on the command line; the
//! Criterion benches in `sig-bench` re-use the same entry points.
//!
//! Energy is modelled (not measured): see `sig-energy` and DESIGN.md for the
//! substitution rationale.

#![warn(missing_docs)]

pub mod experiment;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod report;
pub mod table1;
pub mod table2;

pub use experiment::{ExperimentDefaults, ExperimentPoint, PolicyChoice};

//! Table 2: degree of accuracy of the proposed policies — the percentage of
//! significance-inverted tasks and the mean absolute deviation between the
//! requested and the achieved accurate-task ratio, per benchmark and policy.

use serde::{Deserialize, Serialize};

use sig_kernels::{all_benchmarks, Approach, Benchmark, Degree, ExecutionConfig};

use crate::experiment::{ExperimentDefaults, PolicyChoice};
use crate::report::generic_table;

/// Table 2 row: policy-accuracy metrics of one benchmark under one policy.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AccuracyRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Policy label.
    pub policy: String,
    /// Percentage of significance-inverted tasks (averaged over groups).
    pub inverted_percent: f64,
    /// Mean `|requested − achieved|` accurate-task ratio over groups.
    pub ratio_diff: f64,
    /// Modelled energy of the run in joules, from the runtime's own
    /// per-worker accounting.
    pub energy_joules: f64,
    /// Idle + sleep component of `energy_joules`.
    pub idle_joules: f64,
    /// Transition component of `energy_joules` (DVFS switches, wakeups).
    pub transition_joules: f64,
    /// DVFS frequency-domain switches during the run.
    pub frequency_transitions: u64,
}

/// Run one benchmark at the given degree under one policy and extract the
/// Table 2 metrics from its per-group statistics.
pub fn measure_policy(
    benchmark: &dyn Benchmark,
    choice: PolicyChoice,
    degree: Degree,
    defaults: &ExperimentDefaults,
) -> AccuracyRow {
    let run = benchmark.run(&ExecutionConfig {
        workers: defaults.workers,
        approach: Approach::Significance {
            policy: choice.to_policy(defaults.gtb_buffer),
            degree,
        },
    });
    let groups = &run.groups;
    let (inverted, diff) = if groups.is_empty() {
        (0.0, 0.0)
    } else {
        let inv: f64 = groups
            .iter()
            .map(|(_, g)| g.inversion_percentage())
            .sum::<f64>()
            / groups.len() as f64;
        let diff: f64 =
            groups.iter().map(|(_, g)| g.ratio_diff()).sum::<f64>() / groups.len() as f64;
        (inv, diff)
    };
    AccuracyRow {
        benchmark: benchmark.name().to_string(),
        policy: choice.label().to_string(),
        inverted_percent: inverted,
        ratio_diff: diff,
        energy_joules: run.energy.map(|r| r.joules).unwrap_or_default(),
        idle_joules: run
            .energy
            .map(|r| r.breakdown.idle_joules)
            .unwrap_or_default(),
        transition_joules: run
            .energy
            .map(|r| r.breakdown.transition_joules)
            .unwrap_or_default(),
        frequency_transitions: run.frequency_transitions,
    }
}

/// Produce Table 2 (all benchmarks × all policies at the Medium degree,
/// mirroring the paper's single summary table).
pub fn run(filter: Option<&str>, defaults: &ExperimentDefaults) -> Vec<AccuracyRow> {
    let mut rows = Vec::new();
    for benchmark in all_benchmarks() {
        if let Some(name) = filter {
            if !benchmark.name().eq_ignore_ascii_case(name) {
                continue;
            }
        }
        for choice in PolicyChoice::ALL {
            rows.push(measure_policy(
                benchmark.as_ref(),
                choice,
                Degree::Medium,
                defaults,
            ));
        }
    }
    rows
}

/// Render the accuracy rows in the layout of the paper's Table 2 (one row
/// per benchmark, policies as column pairs).
pub fn render(rows: &[AccuracyRow]) -> String {
    let mut benchmarks: Vec<String> = Vec::new();
    for row in rows {
        if !benchmarks.contains(&row.benchmark) {
            benchmarks.push(row.benchmark.clone());
        }
    }
    let cell = |bench: &str, policy: &str, f: &dyn Fn(&AccuracyRow) -> f64| -> String {
        rows.iter()
            .find(|r| r.benchmark == bench && r.policy == policy)
            .map(|r| format!("{:.2}", f(r)))
            .unwrap_or_else(|| "-".to_string())
    };
    let table_rows: Vec<Vec<String>> = benchmarks
        .iter()
        .map(|b| {
            vec![
                b.clone(),
                cell(b, "LQH", &|r| r.inverted_percent),
                cell(b, "GTB", &|r| r.inverted_percent),
                cell(b, "GTB(MaxBuffer)", &|r| r.inverted_percent),
                cell(b, "LQH", &|r| r.ratio_diff),
                cell(b, "GTB", &|r| r.ratio_diff),
                cell(b, "GTB(MaxBuffer)", &|r| r.ratio_diff),
                cell(b, "LQH", &|r| r.energy_joules),
                cell(b, "GTB", &|r| r.energy_joules),
                cell(b, "GTB(MaxBuffer)", &|r| r.energy_joules),
                cell(b, "LQH", &|r| r.transition_joules + r.idle_joules),
                cell(b, "GTB", &|r| r.transition_joules + r.idle_joules),
                cell(b, "GTB(MaxBuffer)", &|r| {
                    r.transition_joules + r.idle_joules
                }),
            ]
        })
        .collect();
    generic_table(
        &[
            "Benchmark",
            "inv% LQH",
            "inv% GTB(UD)",
            "inv% GTB(MB)",
            "ratio-diff LQH",
            "ratio-diff GTB(UD)",
            "ratio-diff GTB(MB)",
            "energy-J LQH",
            "energy-J GTB(UD)",
            "energy-J GTB(MB)",
            "idle+trans-J LQH",
            "idle+trans-J GTB(UD)",
            "idle+trans-J GTB(MB)",
        ],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sig_kernels::sobel::Sobel;

    #[test]
    fn gtb_max_buffer_is_exact_for_sobel() {
        let sobel = Sobel {
            width: 96,
            height: 96,
        };
        let defaults = ExperimentDefaults {
            workers: 2,
            ..Default::default()
        };
        let row = measure_policy(
            &sobel,
            PolicyChoice::GtbMaxBuffer,
            Degree::Medium,
            &defaults,
        );
        // The paper: GTB respects task significance and the requested ratio
        // perfectly (zero inversions, zero ratio deviation) for Max-Buffer.
        assert_eq!(row.inverted_percent, 0.0);
        assert!(row.ratio_diff < 0.02, "ratio diff {}", row.ratio_diff);
    }

    #[test]
    fn lqh_is_less_exact_than_gtb_for_sobel() {
        let sobel = Sobel {
            width: 96,
            height: 96,
        };
        let defaults = ExperimentDefaults {
            workers: 4,
            ..Default::default()
        };
        let gtb = measure_policy(
            &sobel,
            PolicyChoice::GtbMaxBuffer,
            Degree::Medium,
            &defaults,
        );
        let lqh = measure_policy(&sobel, PolicyChoice::Lqh, Degree::Medium, &defaults);
        // GTB Max-Buffer is exact by construction; LQH works from local,
        // partial information so it may invert some significances and drift
        // a little from the requested ratio — but both stay small.
        assert_eq!(gtb.inverted_percent, 0.0);
        assert!(lqh.ratio_diff < 0.25, "LQH ratio diff {}", lqh.ratio_diff);
        assert!(gtb.ratio_diff < 0.05, "GTB ratio diff {}", gtb.ratio_diff);
    }

    #[test]
    fn render_produces_one_row_per_benchmark() {
        let rows = vec![
            AccuracyRow {
                benchmark: "Sobel".into(),
                policy: "LQH".into(),
                inverted_percent: 2.7,
                ratio_diff: 0.07,
                energy_joules: 12.5,
                idle_joules: 1.5,
                transition_joules: 0.25,
                frequency_transitions: 12,
            },
            AccuracyRow {
                benchmark: "Sobel".into(),
                policy: "GTB".into(),
                inverted_percent: 0.0,
                ratio_diff: 0.0,
                energy_joules: 11.0,
                idle_joules: 1.0,
                transition_joules: 0.0,
                frequency_transitions: 0,
            },
        ];
        let table = render(&rows);
        assert!(table.contains("Sobel"));
        assert!(table.contains("2.70"));
        assert!(table.contains("energy-J LQH"));
        assert!(table.contains("12.50"));
        // Missing policy entries render as "-".
        assert!(table.contains('-'));
    }

    #[test]
    fn measured_rows_carry_runtime_energy() {
        let sobel = Sobel {
            width: 96,
            height: 96,
        };
        let defaults = ExperimentDefaults {
            workers: 2,
            ..Default::default()
        };
        let row = measure_policy(&sobel, PolicyChoice::Lqh, Degree::Medium, &defaults);
        assert!(row.energy_joules > 0.0, "{row:?}");
    }
}

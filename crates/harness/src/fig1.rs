//! Figure 1: Sobel output under different approximation degrees.
//!
//! The paper composes one image whose quadrants show the accurate output
//! (upper left), Mild (upper right), Medium (lower left) and Aggressive
//! (lower right) approximation. This module regenerates that composition,
//! writes it as a PGM file, and reports the PSNR of each quadrant's source.

use std::path::Path;

use serde::{Deserialize, Serialize};

use sig_core::Policy;
use sig_kernels::sobel::Sobel;
use sig_kernels::{Benchmark, Degree, ExecutionConfig};
use sig_quality::{psnr, GrayImage};

use crate::experiment::ExperimentDefaults;

/// PSNR of one approximation degree against the accurate Sobel output.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct QuadrantQuality {
    /// Quadrant label ("accurate", "Mild", "Medium", "Aggr").
    pub label: String,
    /// PSNR in dB against the accurate output (infinite for the accurate
    /// quadrant itself).
    pub psnr_db: f64,
}

/// Result of the Figure 1 generation.
#[derive(Debug)]
pub struct Fig1Output {
    /// The composed quadrant image.
    pub image: GrayImage,
    /// Per-quadrant quality.
    pub quadrants: Vec<QuadrantQuality>,
}

/// Generate the Figure 1 composition for the given Sobel configuration using
/// the significance runtime (Max-Buffer GTB, which matches the requested
/// ratios exactly).
pub fn generate(sobel: &Sobel, defaults: &ExperimentDefaults) -> Fig1Output {
    let accurate = sobel.run(&ExecutionConfig::accurate(defaults.workers));
    let run_degree = |degree: Degree| {
        sobel.run(&ExecutionConfig::significance(
            defaults.workers,
            Policy::GtbMaxBuffer,
            degree,
        ))
    };
    let mild = run_degree(Degree::Mild);
    let medium = run_degree(Degree::Medium);
    let aggressive = run_degree(Degree::Aggressive);

    let image = GrayImage::quadrants(
        &sobel.output_image(&accurate.values),
        &sobel.output_image(&mild.values),
        &sobel.output_image(&medium.values),
        &sobel.output_image(&aggressive.values),
    );
    let quadrants = vec![
        QuadrantQuality {
            label: "accurate".into(),
            psnr_db: f64::INFINITY,
        },
        QuadrantQuality {
            label: "Mild".into(),
            psnr_db: psnr(&accurate.values, &mild.values, 255.0),
        },
        QuadrantQuality {
            label: "Medium".into(),
            psnr_db: psnr(&accurate.values, &medium.values, 255.0),
        },
        QuadrantQuality {
            label: "Aggr".into(),
            psnr_db: psnr(&accurate.values, &aggressive.values, 255.0),
        },
    ];
    Fig1Output { image, quadrants }
}

/// Generate Figure 1 and write the composed image to `<dir>/fig1_sobel.pgm`.
pub fn generate_and_save(
    sobel: &Sobel,
    defaults: &ExperimentDefaults,
    dir: &Path,
) -> std::io::Result<Fig1Output> {
    let output = generate(sobel, defaults);
    std::fs::create_dir_all(dir)?;
    output.image.save_pgm(dir.join("fig1_sobel.pgm"))?;
    Ok(output)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quadrant_quality_is_ordered_by_degree() {
        let sobel = Sobel {
            width: 96,
            height: 96,
        };
        let defaults = ExperimentDefaults {
            workers: 2,
            ..Default::default()
        };
        let out = generate(&sobel, &defaults);
        assert_eq!(out.image.width(), 96);
        assert_eq!(out.quadrants.len(), 4);
        let mild = out.quadrants[1].psnr_db;
        let aggressive = out.quadrants[3].psnr_db;
        assert!(
            mild >= aggressive,
            "mild PSNR {mild} should be at least aggressive {aggressive}"
        );
        // Aggressive still yields a usable image (graceful degradation).
        assert!(aggressive > 10.0, "aggressive PSNR {aggressive} too low");
    }
}

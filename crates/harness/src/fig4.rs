//! Figure 4: runtime overhead of the significance-aware policies.
//!
//! Every benchmark is executed with all tasks at the same effective accuracy
//! (ratio 100%, so approximation brings no benefit) under GTB, GTB
//! (Max Buffer) and LQH, and compared against the significance-agnostic
//! runtime. The paper reports the normalised execution time; overheads are
//! "typically negligible", peaking around 7% for DCT under Max-Buffer GTB.

use serde::{Deserialize, Serialize};

use sig_core::Policy;
use sig_kernels::{all_benchmarks, Benchmark};

use crate::experiment::{ExperimentDefaults, PolicyChoice};
use crate::report::generic_table;

/// Normalised execution time of one benchmark under the three policies.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct OverheadRow {
    /// Benchmark name.
    pub benchmark: String,
    /// Baseline (significance-agnostic) execution time in seconds.
    pub baseline_seconds: f64,
    /// Normalised execution time under GTB (user-defined buffer).
    pub gtb: f64,
    /// Normalised execution time under GTB (Max Buffer).
    pub gtb_max_buffer: f64,
    /// Normalised execution time under LQH.
    pub lqh: f64,
}

/// Measure the policy overhead of one benchmark.
pub fn run_benchmark(benchmark: &dyn Benchmark, defaults: &ExperimentDefaults) -> OverheadRow {
    let baseline = benchmark
        .run_full_accuracy(defaults.workers, Policy::SignificanceAgnostic)
        .elapsed
        .as_secs_f64();
    let normalised = |choice: PolicyChoice| {
        let t = benchmark
            .run_full_accuracy(defaults.workers, choice.to_policy(defaults.gtb_buffer))
            .elapsed
            .as_secs_f64();
        t / baseline
    };
    OverheadRow {
        benchmark: benchmark.name().to_string(),
        baseline_seconds: baseline,
        gtb: normalised(PolicyChoice::GtbUserBuffer),
        gtb_max_buffer: normalised(PolicyChoice::GtbMaxBuffer),
        lqh: normalised(PolicyChoice::Lqh),
    }
}

/// Measure the policy overhead of every benchmark (or one, by name).
pub fn run(filter: Option<&str>, defaults: &ExperimentDefaults) -> Vec<OverheadRow> {
    all_benchmarks()
        .iter()
        .filter(|b| match filter {
            Some(name) => b.name().eq_ignore_ascii_case(name),
            None => true,
        })
        .map(|b| run_benchmark(b.as_ref(), defaults))
        .collect()
}

/// Render the overhead rows as a table of normalised execution times.
pub fn render(rows: &[OverheadRow]) -> String {
    let table_rows: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            vec![
                r.benchmark.clone(),
                format!("{:.4}", r.baseline_seconds),
                format!("{:.3}", r.gtb),
                format!("{:.3}", r.gtb_max_buffer),
                format!("{:.3}", r.lqh),
            ]
        })
        .collect();
    generic_table(
        &[
            "Benchmark",
            "agnostic (s)",
            "GTB (norm.)",
            "GTB(MaxBuffer) (norm.)",
            "LQH (norm.)",
        ],
        &table_rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use sig_kernels::sobel::Sobel;

    #[test]
    fn overhead_is_modest_for_sobel() {
        let sobel = Sobel {
            width: 128,
            height: 128,
        };
        let defaults = ExperimentDefaults {
            workers: 2,
            ..Default::default()
        };
        let row = run_benchmark(&sobel, &defaults);
        assert!(row.baseline_seconds > 0.0);
        // Smoke-level bound only: the paper reports <= ~7% overhead, but this
        // unit test runs a 128×128 input in milliseconds on a shared machine,
        // so the normalised time is dominated by scheduling noise. The real
        // Figure 4 numbers come from `sig-experiments fig4` / the Criterion
        // bench on default-sized inputs.
        for (label, value) in [
            ("GTB", row.gtb),
            ("GTB(MB)", row.gtb_max_buffer),
            ("LQH", row.lqh),
        ] {
            assert!(
                value.is_finite() && value > 0.0 && value < 50.0,
                "{label} normalised time {value} out of range"
            );
        }
    }

    #[test]
    fn render_contains_all_columns() {
        let rows = vec![OverheadRow {
            benchmark: "Sobel".into(),
            baseline_seconds: 0.5,
            gtb: 1.01,
            gtb_max_buffer: 1.05,
            lqh: 0.99,
        }];
        let table = render(&rows);
        assert!(table.contains("Sobel"));
        assert!(table.contains("GTB(MaxBuffer)"));
        assert!(table.contains("1.050"));
    }
}

//! Common experiment plumbing: which policies are compared, how a single
//! benchmark run is turned into a measured data point, and the defaults used
//! across figures.

use serde::{Deserialize, Serialize};

use sig_core::Policy;
use sig_energy::PowerModel;
use sig_kernels::{Approach, Benchmark, Degree, ExecutionConfig, RunOutput};
use sig_quality::QualityScore;

/// The policy configurations compared throughout the evaluation, matching
/// the paper's legend: GTB with a user-defined (bounded) buffer, GTB with an
/// unbounded buffer, and LQH.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum PolicyChoice {
    /// Global task buffering with the user-defined (bounded) buffer size.
    GtbUserBuffer,
    /// Global task buffering with an unbounded buffer ("Max Buffer GTB").
    GtbMaxBuffer,
    /// Local queue history.
    Lqh,
}

impl PolicyChoice {
    /// The three policies in the order the paper's figures show them.
    pub const ALL: [PolicyChoice; 3] = [
        PolicyChoice::GtbUserBuffer,
        PolicyChoice::GtbMaxBuffer,
        PolicyChoice::Lqh,
    ];

    /// Label used in figures and tables.
    pub fn label(self) -> &'static str {
        match self {
            PolicyChoice::GtbUserBuffer => "GTB",
            PolicyChoice::GtbMaxBuffer => "GTB(MaxBuffer)",
            PolicyChoice::Lqh => "LQH",
        }
    }

    /// Convert into a concrete runtime [`Policy`], using the given bounded
    /// buffer size for the user-defined GTB flavour.
    pub fn to_policy(self, gtb_buffer: usize) -> Policy {
        match self {
            PolicyChoice::GtbUserBuffer => Policy::Gtb {
                buffer_size: gtb_buffer,
            },
            PolicyChoice::GtbMaxBuffer => Policy::GtbMaxBuffer,
            PolicyChoice::Lqh => Policy::Lqh,
        }
    }
}

/// Shared experiment defaults.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentDefaults {
    /// Worker threads used by task-parallel runs.
    pub workers: usize,
    /// Buffer size of the bounded GTB flavour (the paper sets this per
    /// benchmark at compile time; one moderate value is used here).
    pub gtb_buffer: usize,
    /// Power model used to convert (makespan, busy core-time) into joules.
    pub power_model: PowerModel,
}

impl Default for ExperimentDefaults {
    fn default() -> Self {
        ExperimentDefaults {
            workers: ExecutionConfig::default_workers(),
            gtb_buffer: 32,
            power_model: PowerModel::for_host(),
        }
    }
}

/// One measured data point: a (benchmark, variant) pair with its makespan,
/// modelled energy and output quality.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ExperimentPoint {
    /// Benchmark name.
    pub benchmark: String,
    /// Variant label ("accurate", "perforation", or a policy label).
    pub variant: String,
    /// Approximation degree, if the variant has one.
    pub degree: Option<String>,
    /// Wall-clock execution time in seconds.
    pub time_seconds: f64,
    /// Modelled energy in joules. Runtime-driven runs report their own
    /// per-worker (DVFS-aware) accounting; serial runs fall back to
    /// integrating the experiment's power model over the measured window.
    pub energy_joules: f64,
    /// Idle (halted or sleeping cores) component of `energy_joules`.
    pub idle_joules: f64,
    /// Transition component of `energy_joules`: DVFS switches and sleep
    /// wakeups. Zero for serial runs.
    pub transition_joules: f64,
    /// DVFS frequency-domain switches during the run. Zero for serial runs.
    pub frequency_transitions: u64,
    /// Output quality (lower is better; PSNR⁻¹ or relative error %).
    pub quality: f64,
    /// Label of the quality metric.
    pub quality_metric: String,
    /// Fraction of tasks executed accurately (1.0 for serial runs).
    pub accurate_fraction: f64,
}

impl ExperimentPoint {
    /// Build a data point from a run, comparing its output against the
    /// reference run for quality.
    pub fn from_run(
        benchmark: &dyn Benchmark,
        variant: &str,
        degree: Option<Degree>,
        defaults: &ExperimentDefaults,
        reference: &RunOutput,
        run: &RunOutput,
    ) -> Self {
        let quality: QualityScore = benchmark.quality(reference, run);
        let breakdown = match &run.energy {
            // Runtime-driven accounting (per-worker shards, DVFS-aware).
            Some(reading) => reading.breakdown,
            // Serial comparators have no runtime; integrate the power model
            // over the measured window instead.
            None => defaults
                .power_model
                .energy_breakdown(run.elapsed.as_secs_f64(), run.busy_core_seconds),
        };
        let accurate_fraction = if run.tasks.total == 0 {
            1.0
        } else {
            run.tasks.accurate as f64 / run.tasks.total as f64
        };
        ExperimentPoint {
            benchmark: benchmark.name().to_string(),
            variant: variant.to_string(),
            degree: degree.map(|d| d.name().to_string()),
            time_seconds: run.elapsed.as_secs_f64(),
            energy_joules: breakdown.total(),
            idle_joules: breakdown.idle_joules,
            transition_joules: breakdown.transition_joules,
            frequency_transitions: run.frequency_transitions,
            quality: quality.value,
            quality_metric: benchmark.info().metric.label().to_string(),
            accurate_fraction,
        }
    }
}

/// Run one benchmark variant and produce its data point.
pub fn measure(
    benchmark: &dyn Benchmark,
    approach: Approach,
    defaults: &ExperimentDefaults,
    reference: &RunOutput,
) -> ExperimentPoint {
    let config = ExecutionConfig {
        workers: defaults.workers,
        approach,
    };
    let run = benchmark.run(&config);
    let (variant, degree) = match approach {
        Approach::Accurate => ("accurate".to_string(), None),
        Approach::Significance { policy, degree } => (policy.name().to_string(), Some(degree)),
        Approach::Perforation { degree } => ("perforation".to_string(), Some(degree)),
    };
    ExperimentPoint::from_run(benchmark, &variant, degree, defaults, reference, &run)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sig_kernels::sobel::Sobel;

    fn tiny_sobel() -> Sobel {
        Sobel {
            width: 64,
            height: 64,
        }
    }

    #[test]
    fn policy_choice_labels_and_conversion() {
        assert_eq!(PolicyChoice::GtbUserBuffer.label(), "GTB");
        assert_eq!(PolicyChoice::Lqh.to_policy(8), Policy::Lqh);
        assert_eq!(
            PolicyChoice::GtbUserBuffer.to_policy(8),
            Policy::Gtb { buffer_size: 8 }
        );
        assert_eq!(
            PolicyChoice::GtbMaxBuffer.to_policy(8),
            Policy::GtbMaxBuffer
        );
        assert_eq!(PolicyChoice::ALL.len(), 3);
    }

    #[test]
    fn defaults_are_sane() {
        let d = ExperimentDefaults::default();
        assert!(d.workers >= 1);
        assert!(d.gtb_buffer >= 1);
        assert!(d.power_model.total_cores() >= 1);
    }

    #[test]
    fn measure_produces_consistent_point() {
        let sobel = tiny_sobel();
        let defaults = ExperimentDefaults {
            workers: 2,
            ..Default::default()
        };
        let reference = sobel.run(&ExecutionConfig::accurate(2));
        let point = measure(
            &sobel,
            Approach::Significance {
                policy: Policy::GtbMaxBuffer,
                degree: Degree::Medium,
            },
            &defaults,
            &reference,
        );
        assert_eq!(point.benchmark, "Sobel");
        assert_eq!(point.variant, "GTB(MaxBuffer)");
        assert_eq!(point.degree.as_deref(), Some("Medium"));
        assert!(point.time_seconds > 0.0);
        assert!(point.energy_joules > 0.0);
        assert!(point.quality >= 0.0);
        assert!((0.0..=1.0).contains(&point.accurate_fraction));
    }

    #[test]
    fn accurate_reference_has_perfect_quality() {
        let sobel = tiny_sobel();
        let defaults = ExperimentDefaults {
            workers: 2,
            ..Default::default()
        };
        let reference = sobel.run(&ExecutionConfig::accurate(2));
        let point = measure(&sobel, Approach::Accurate, &defaults, &reference);
        assert_eq!(point.quality, 0.0);
        assert_eq!(point.variant, "accurate");
        assert_eq!(point.accurate_fraction, 1.0);
    }
}

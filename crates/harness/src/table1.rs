//! Table 1: benchmark configuration (approximate-or-drop, approximation
//! degrees, quality metric).

use sig_kernels::all_benchmarks;

use crate::report::generic_table;

/// Render Table 1 from the benchmark registry.
pub fn render() -> String {
    let rows: Vec<Vec<String>> = all_benchmarks()
        .iter()
        .map(|b| {
            let info = b.info();
            vec![
                info.name.to_string(),
                info.technique.code().to_string(),
                format!("{:.3}", info.degrees[0]),
                format!("{:.3}", info.degrees[1]),
                format!("{:.3}", info.degrees[2]),
                info.degree_parameter.to_string(),
                info.metric.label().to_string(),
            ]
        })
        .collect();
    generic_table(
        &[
            "Benchmark",
            "Approx/Drop",
            "Mild",
            "Medium",
            "Aggressive",
            "Degree parameter",
            "Quality",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_lists_all_six_benchmarks() {
        let table = render();
        for name in ["Sobel", "DCT", "MC", "Kmeans", "Jacobi", "Fluidanimate"] {
            assert!(table.contains(name), "missing {name} in:\n{table}");
        }
    }

    #[test]
    fn table_contains_degree_values_from_the_paper() {
        let table = render();
        // Sobel mild = 0.8, Jacobi aggressive tolerance = 0.01.
        assert!(table.contains("0.800"));
        assert!(table.contains("0.010"));
    }
}

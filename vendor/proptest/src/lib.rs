//! Vendored std-only stand-in for `proptest`.
//!
//! Implements the subset used by this workspace's property tests: the
//! `proptest!` macro with `arg in strategy` bindings and an optional
//! `#![proptest_config(...)]` header, range strategies over numeric types,
//! `proptest::collection::vec`, and the `prop_assert*` macros. Inputs are
//! drawn from a deterministic SplitMix64 stream rather than proptest's
//! shrinking engine, so failures reproduce exactly across runs but are not
//! minimised.

use std::ops::{Range, RangeInclusive};

/// Deterministic test-input generator (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Create a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Test-case generation strategy, mirroring `proptest::strategy::Strategy`.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

impl Strategy for Range<usize> {
    type Value = usize;
    fn generate(&self, rng: &mut TestRng) -> usize {
        assert!(self.start < self.end, "empty strategy range");
        self.start + (rng.next_u64() % (self.end - self.start) as u64) as usize
    }
}

impl Strategy for Range<u64> {
    type Value = u64;
    fn generate(&self, rng: &mut TestRng) -> u64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.next_u64() % (self.end - self.start)
    }
}

impl Strategy for Range<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty strategy range");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

impl Strategy for RangeInclusive<f64> {
    type Value = f64;
    fn generate(&self, rng: &mut TestRng) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty strategy range");
        start + rng.unit_f64() * (end - start)
    }
}

/// Collection strategies.
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy producing `Vec`s with lengths drawn from `len`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let len = self.len.start + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Per-test configuration, mirroring `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Run each property `cases` times.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Assert inside a property (plain `assert!` here: no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Assert equality inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Assert inequality inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Define property tests: each function runs its body for every generated
/// combination of its `arg in strategy` bindings.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@expand ($cfg) $($rest)*);
    };
    (
        @expand ($cfg:expr)
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $( $arg:ident in $strategy:expr ),* $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                // Seed differs per property so sibling tests explore
                // different inputs, but is fixed per name for reproducibility.
                let mut seed = 0xcafe_f00du64;
                for byte in stringify!($name).bytes() {
                    seed = seed.wrapping_mul(31).wrapping_add(u64::from(byte));
                }
                let mut rng = $crate::TestRng::new(seed);
                for _case in 0..config.cases {
                    $( let $arg = $crate::Strategy::generate(&($strategy), &mut rng); )*
                    $body
                }
            }
        )*
    };
    ( $($rest:tt)* ) => {
        $crate::proptest!(@expand ($crate::ProptestConfig::default()) $($rest)*);
    };
}

/// Common imports, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::collection;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
    pub use crate::{ProptestConfig, Strategy, TestRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        #[test]
        fn ranges_are_respected(
            n in 1usize..50,
            x in 0.0f64..=1.0,
            v in collection::vec(10.0f64..20.0, 1..16),
        ) {
            prop_assert!((1..50).contains(&n));
            prop_assert!((0.0..=1.0).contains(&x));
            prop_assert!(!v.is_empty() && v.len() < 16);
            prop_assert!(v.iter().all(|e| (10.0..20.0).contains(e)));
        }
    }

    #[test]
    fn rng_is_deterministic() {
        let mut a = TestRng::new(1);
        let mut b = TestRng::new(1);
        assert_eq!(a.next_u64(), b.next_u64());
    }
}

//! Vendored std-only stand-in for the `criterion` benchmark harness.
//!
//! Implements the subset of the criterion API the workspace's benches use:
//! `Criterion::benchmark_group`, group configuration (`sample_size`,
//! `warm_up_time`, `measurement_time`), `bench_function` with `Bencher::iter`,
//! `black_box`, and the `criterion_group!` / `criterion_main!` macros. Timing
//! is a plain min/mean/max over the configured sample count — statistically
//! far weaker than real criterion, but it keeps `cargo bench` runnable in the
//! offline build environment and prints comparable per-benchmark numbers.

use std::time::{Duration, Instant};

/// Opaque-to-the-optimiser identity function.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 10,
            warm_up_time: Duration::from_millis(100),
            measurement_time: Duration::from_secs(1),
        }
    }

    /// Benchmark a function outside any group.
    pub fn bench_function(&mut self, id: impl Into<String>, f: impl FnMut(&mut Bencher)) {
        let id = id.into();
        let mut group = self.benchmark_group(String::new());
        group.bench_function(id, f);
        group.finish();
    }
}

/// A group of benchmarks sharing a name prefix and configuration.
pub struct BenchmarkGroup<'c> {
    _criterion: &'c mut Criterion,
    name: String,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl BenchmarkGroup<'_> {
    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n > 0, "sample size must be positive");
        self.sample_size = n;
        self
    }

    /// Time spent warming up before measurement.
    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.warm_up_time = t;
        self
    }

    /// Soft cap on total measurement time per benchmark.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.measurement_time = t;
        self
    }

    /// Run one benchmark.
    pub fn bench_function(
        &mut self,
        id: impl Into<String>,
        mut f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        let label = if self.name.is_empty() {
            id
        } else {
            format!("{}/{}", self.name, id)
        };
        let mut bencher = Bencher {
            samples: Vec::with_capacity(self.sample_size),
            sample_size: self.sample_size,
            warm_up_time: self.warm_up_time,
            measurement_time: self.measurement_time,
        };
        f(&mut bencher);
        report(&label, &bencher.samples);
        self
    }

    /// End the group (prints nothing extra; kept for API compatibility).
    pub fn finish(&mut self) {}
}

/// Passed to the benchmark closure; runs and times the workload.
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
    warm_up_time: Duration,
    measurement_time: Duration,
}

impl Bencher {
    /// Time `routine`, once per sample.
    pub fn iter<O>(&mut self, mut routine: impl FnMut() -> O) {
        // Warm-up: run untimed until the warm-up budget is spent.
        let warm_start = Instant::now();
        while warm_start.elapsed() < self.warm_up_time {
            black_box(routine());
        }
        let measure_start = Instant::now();
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            black_box(routine());
            self.samples.push(t0.elapsed());
            if measure_start.elapsed() > self.measurement_time {
                break;
            }
        }
    }
}

fn report(label: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{label:<48} (no samples)");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().min().copied().unwrap_or_default();
    let max = samples.iter().max().copied().unwrap_or_default();
    println!(
        "{label:<48} time: [{:>10.3?} {:>10.3?} {:>10.3?}]  ({} samples)",
        min,
        mean,
        max,
        samples.len()
    );
}

/// Collect benchmark functions into one runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Entry point running the given groups, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_records() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("t");
        group
            .sample_size(3)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(50));
        let mut runs = 0usize;
        group.bench_function("noop", |b| {
            b.iter(|| {
                runs += 1;
            })
        });
        group.finish();
        assert!(
            runs >= 3,
            "warm-up plus samples should run at least 3 times"
        );
    }

    #[test]
    fn black_box_is_identity() {
        assert_eq!(black_box(41) + 1, 42);
    }
}

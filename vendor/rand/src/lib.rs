//! Vendored std-only stand-in for the `rand` crate.
//!
//! The workspace uses a small, deterministic slice of the rand API —
//! `StdRng::seed_from_u64` plus `Rng::gen_range` over `f64` and `usize`
//! ranges — to generate reproducible benchmark inputs. The build environment
//! has no access to crates.io, so that slice is implemented here on top of
//! xoshiro256++ (public-domain algorithm by Blackman & Vigna) seeded via
//! SplitMix64, matching the real crate's call-site syntax exactly.
//!
//! The streams differ from the real `rand::StdRng` (which is ChaCha-based);
//! every consumer in this workspace only relies on determinism per seed, not
//! on a specific stream.

use std::ops::{Range, RangeInclusive};

/// Core random source: a stream of `u64`s.
pub trait RngCore {
    /// Next 64 uniformly distributed bits.
    fn next_u64(&mut self) -> u64;
}

/// Sampling extension trait, mirroring `rand::Rng::gen_range`.
pub trait Rng: RngCore {
    /// Sample a value uniformly from `range`.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample(self)
    }
}

impl<T: RngCore> Rng for T {}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Construct the generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one sample from the range.
    fn sample<R: RngCore>(self, rng: &mut R) -> T;
}

fn unit_f64(bits: u64) -> f64 {
    // 53 uniform mantissa bits in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

impl SampleRange<f64> for RangeInclusive<f64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample empty range");
        // 2^-53 end bias is irrelevant for the workspace's input generation.
        start + unit_f64(rng.next_u64()) * (end - start)
    }
}

impl SampleRange<usize> for Range<usize> {
    fn sample<R: RngCore>(self, rng: &mut R) -> usize {
        let span = self
            .end
            .checked_sub(self.start)
            .filter(|&s| s > 0)
            .expect("cannot sample empty range");
        // Modulo bias is < 2^-50 for the small spans used here.
        self.start + (rng.next_u64() % span as u64) as usize
    }
}

impl SampleRange<u64> for Range<u64> {
    fn sample<R: RngCore>(self, rng: &mut R) -> u64 {
        let span = self
            .end
            .checked_sub(self.start)
            .filter(|&s| s > 0)
            .expect("cannot sample empty range");
        self.start + rng.next_u64() % span
    }
}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator, stand-in for `rand::rngs::StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            StdRng {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [ref mut s0, ref mut s1, ref mut s2, ref mut s3] = self.state;
            let result = s0.wrapping_add(*s3).rotate_left(23).wrapping_add(*s0);
            let t = *s1 << 17;
            *s2 ^= *s0;
            *s3 ^= *s1;
            *s1 ^= *s2;
            *s0 ^= *s3;
            *s2 ^= t;
            *s3 = s3.rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let va: Vec<f64> = (0..16).map(|_| a.gen_range(0.0..1.0)).collect();
        let vb: Vec<f64> = (0..16).map(|_| b.gen_range(0.0..1.0)).collect();
        let vc: Vec<f64> = (0..16).map(|_| c.gen_range(0.0..1.0)).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            let f = rng.gen_range(-4.0..4.0);
            assert!((-4.0..4.0).contains(&f));
            let i = rng.gen_range(3usize..10);
            assert!((3..10).contains(&i));
            let g = rng.gen_range(0.0f64..=1.0);
            assert!((0.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn spread_is_plausible() {
        let mut rng = StdRng::seed_from_u64(1);
        let mean: f64 = (0..10_000).map(|_| rng.gen_range(0.0..1.0)).sum::<f64>() / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from uniform");
    }
}

//! Vendored stand-in for `serde_derive`.
//!
//! The workspace derives `Serialize` / `Deserialize` on its report and
//! configuration types but never serialises them through serde (reports are
//! rendered by hand as CSV/JSON/text). The build environment has no access to
//! crates.io, so these derives expand to nothing: the attribute remains valid
//! at every `#[derive(Serialize, Deserialize)]` site without pulling in the
//! real implementation.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
